#include "ckpt/nvm_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/stores.hpp"
#include "delta/delta.hpp"

namespace ndpcr::ckpt {

NvmStore::NvmStore(std::size_t capacity_bytes, std::size_t dedup_block_bytes)
    : capacity_(capacity_bytes), dedup_block_(dedup_block_bytes) {}

std::size_t NvmStore::unique_cost(
    ByteSpan data, std::vector<std::uint64_t>* keys_out) const {
  if (dedup_block_ == 0) {
    if (keys_out) keys_out->clear();
    return data.size();
  }
  std::size_t cost = 0;
  // Blocks staged by this image (intra-image duplicates count once).
  std::map<std::uint64_t, std::uint32_t> pending;
  if (keys_out) {
    keys_out->clear();
    keys_out->reserve(data.size() / dedup_block_ + 1);
  }
  for (std::size_t pos = 0; pos < data.size(); pos += dedup_block_) {
    const std::size_t len = std::min(dedup_block_, data.size() - pos);
    const auto size = static_cast<std::uint32_t>(len);
    std::uint64_t key = delta::block_hash(data.subspan(pos, len));
    for (;; ++key) {
      const auto it = blocks_.find(key);
      if (it != blocks_.end()) {
        if (it->second.size == size) break;  // resident duplicate
        continue;                            // collision: probe on
      }
      const auto pit = pending.find(key);
      if (pit != pending.end()) {
        if (pit->second == size) break;  // duplicate within this image
        continue;
      }
      pending.emplace(key, size);
      cost += len;
      break;
    }
    if (keys_out) keys_out->push_back(key);
  }
  return cost;
}

void NvmStore::admit_blocks(const Entry& entry) {
  std::size_t pos = 0;
  for (const std::uint64_t key : entry.block_keys) {
    const auto size = static_cast<std::uint32_t>(
        std::min(dedup_block_, entry.data.size() - pos));
    auto [it, inserted] = blocks_.try_emplace(key, BlockInfo{size, 0});
    // Physical usage is charged when a block becomes resident and
    // refunded when its last reference drops (release_entry) - never
    // against the entry that happened to pay for it, because a shared
    // block must stay charged while any later checkpoint references it.
    if (inserted) used_ += size;
    ++it->second.refs;
    pos += dedup_block_;
  }
}

void NvmStore::release_entry(const Entry& entry) {
  logical_ -= entry.data.size();
  if (dedup_block_ == 0) {
    used_ -= entry.charged;
    return;
  }
  for (const std::uint64_t key : entry.block_keys) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) continue;
    if (--it->second.refs == 0) {
      used_ -= it->second.size;
      blocks_.erase(it);
    }
  }
}

bool NvmStore::put(std::uint64_t checkpoint_id, Bytes data) {
  if (gate_) {
    const MutationDecision d =
        gate_({MutationOp::kPut, 0, checkpoint_id, data.size()});
    if (d.drop) return true;  // the dead device reports success
    if (d.torn && d.keep_bytes < data.size()) data.resize(d.keep_bytes);
  }
  if (!entries_.empty() && checkpoint_id <= entries_.back().id) {
    throw std::logic_error("checkpoint ids must be strictly increasing");
  }
  // Without dedup the cost is fixed, so an oversized checkpoint is
  // rejected before anything is evicted. With dedup the cost depends on
  // the resident blocks and is settled by the loop below.
  if (dedup_block_ == 0 && data.size() > capacity_) return false;

  // Evict oldest unlocked entries until the new checkpoint fits. Locked
  // entries block eviction of everything behind them too - a circular
  // buffer cannot reclaim around a pinned region - which matches the
  // paper's description of the NDP pausing new local writes if it falls
  // too far behind. With dedup the cost depends on which blocks survive,
  // so it is recomputed after every eviction.
  std::vector<std::uint64_t> keys;
  std::size_t charge = 0;
  while (true) {
    charge = unique_cost(ByteSpan(data), &keys);
    if (used_ + charge <= capacity_) break;
    if (entries_.empty() || entries_.front().lock_count > 0) {
      return false;
    }
    release_entry(entries_.front());
    entries_.pop_front();
    ++evictions_;
  }
  logical_ += data.size();
  Entry entry{checkpoint_id, std::move(data), 0, charge, std::move(keys)};
  if (dedup_block_ != 0) {
    admit_blocks(entry);  // adds exactly `charge` newly-resident bytes
  } else {
    used_ += charge;
  }
  entries_.push_back(std::move(entry));
  return true;
}

std::optional<ByteSpan> NvmStore::get(std::uint64_t checkpoint_id) const {
  for (const auto& e : entries_) {
    if (e.id == checkpoint_id) return ByteSpan(e.data);
  }
  return std::nullopt;
}

bool NvmStore::contains(std::uint64_t checkpoint_id) const {
  return get(checkpoint_id).has_value();
}

std::optional<std::uint64_t> NvmStore::newest_id() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back().id;
}

void NvmStore::lock(std::uint64_t checkpoint_id) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      ++e.lock_count;
      return;
    }
  }
  throw std::out_of_range("lock: unknown checkpoint id");
}

void NvmStore::unlock(std::uint64_t checkpoint_id) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      if (e.lock_count == 0) {
        throw std::logic_error("unlock: checkpoint is not locked");
      }
      --e.lock_count;
      return;
    }
  }
  throw std::out_of_range("unlock: unknown checkpoint id");
}

bool NvmStore::is_locked(std::uint64_t checkpoint_id) const {
  for (const auto& e : entries_) {
    if (e.id == checkpoint_id) return e.lock_count > 0;
  }
  return false;
}

void NvmStore::erase(std::uint64_t checkpoint_id) {
  if (gate_) {
    const MutationDecision d = gate_({MutationOp::kErase, 0, checkpoint_id, 0});
    if (d.drop) return;
  }
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.id == checkpoint_id; });
  if (it == entries_.end()) return;
  if (it->lock_count > 0) {
    throw std::logic_error("erase: checkpoint is locked");
  }
  release_entry(*it);
  entries_.erase(it);
}

void NvmStore::clear() {
  entries_.clear();
  blocks_.clear();
  used_ = 0;
  logical_ = 0;
}

bool NvmStore::corrupt_entry(std::uint64_t checkpoint_id,
                             std::uint64_t salt) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      if (e.data.empty()) return false;
      // Flips a byte of the materialized copy only; the dedup accounting
      // keys describe what was written, and stay consistent for release.
      corrupt_in_place(MutableByteSpan(e.data), salt);
      return true;
    }
  }
  return false;
}

}  // namespace ndpcr::ckpt
