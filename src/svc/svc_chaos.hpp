#pragma once

// Service-layer chaos soak (docs/SERVICE.md): drive hundreds of
// interleaved tenant sessions over one CheckpointService - heterogeneous
// ranks, codecs, delta chains, QoS weights and quotas, roughly half the
// tenants under seeded fault plans - and check the cross-tenant
// invariants after every restart probe:
//
//   1. A restarted tenant's payloads are byte-identical to what *that
//      tenant* committed under the recovered id (cross-tenant corruption
//      would surface here: tenant A's faults must never change tenant
//      B's recovered bytes).
//   2. The recovered id never exceeds the session's latest-pointer.
//   3. A tenant whose latest-pointer is set always restarts (local NVM
//      writes are verified, so the newest checkpoint is always intact).
//
// A run is a pure function of its SvcChaosConfig: the tenant
// interleaving, admission outcomes and restart probes all derive from
// the seed, so the report - per-tenant and service fingerprints included
// - is bit-identical at any pool size. And because each tenant's fault
// plan only decorates that tenant's store views, a tenant's fingerprint
// is unchanged when *other* tenants' fault schedules change (the
// isolation property svc_test pins by diffing clean-tenant fingerprints
// between a clean run and a faulted run).

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "svc/service.hpp"

namespace ndpcr::obs {
class MetricsRegistry;
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::svc {

struct SvcChaosConfig {
  std::uint64_t seed = 1;
  std::uint32_t tenants = 32;
  std::uint32_t waves = 6;  // seeded staging sweeps over every tenant
  std::size_t payload_bytes = 1024;  // base per-rank payload
  double update_fraction = 0.10;     // sparse-update churn per wave
  // Fault rates for the faulted half of the tenants (odd tenant ids).
  faults::FaultRates rates{0.02, 0.01, 0.01, 0.01};
  bool faults = true;
  double p_restart = 0.125;  // per-tenant per-wave restart probe chance
  // Every quota_every-th tenant gets an IO grant sized to exhaust
  // mid-run (seam denials + degraded IO + admission kDeniedQuota all get
  // exercised). 0 disables quotas.
  std::uint32_t quota_every = 5;
  // Shared-NVM budget as a fraction of the sum of per-rank capacities;
  // ~0.3 puts the steady-state residency in the throttle band so
  // backpressure statuses appear. 0 = unlimited (no backpressure).
  double nvm_budget_fraction = 0.30;
  exec::TaskPool* pool = nullptr;  // forwarded to the service
  obs::MetricsRegistry* metrics = nullptr;  // "svc." export at run end
  obs::Tracer* trace = nullptr;
};

struct SvcChaosReport {
  std::uint64_t seed = 0;
  std::uint32_t tenants = 0;
  std::uint64_t staged = 0;
  std::uint64_t committed = 0;
  std::uint64_t throttled = 0;
  std::uint64_t denied_backpressure = 0;
  std::uint64_t denied_quota = 0;
  std::uint64_t quota_write_denials = 0;
  std::uint64_t restarts = 0;
  std::uint64_t restored = 0;
  std::uint64_t no_checkpoint = 0;
  std::uint64_t fault_injections = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> violation_notes;  // first few, for diagnostics
  double jain_io = 1.0;
  double jain_io_weighted = 1.0;
  double virtual_time = 0.0;
  // Per-tenant session fingerprints, tenant order: the isolation test's
  // unit of comparison.
  std::vector<std::uint32_t> tenant_fingerprints;
  std::uint32_t service_fingerprint = 0;
  std::uint32_t fingerprint = 0;  // CRC32 of the whole run's outcomes
};

// Execute one seeded service soak. Deterministic: same config, same
// report (fingerprints included), at any pool size.
SvcChaosReport run_svc_chaos(const SvcChaosConfig& config);

}  // namespace ndpcr::svc
