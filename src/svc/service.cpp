#include "svc/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"  // health_fingerprint
#include "obs/trace.hpp"

namespace ndpcr::svc {
namespace {

void feed_u64(Crc32& crc, std::uint64_t v) { crc.update(&v, sizeof v); }

void feed_double(Crc32& crc, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  feed_u64(crc, bits);
}

void feed_data_path(Crc32& crc, const ckpt::DataPathStats& d) {
  feed_u64(crc, d.commits_full);
  feed_u64(crc, d.commits_delta);
  feed_u64(crc, d.payload_bytes_in);
  feed_u64(crc, d.delta_input_bytes);
  feed_u64(crc, d.delta_encoded_bytes);
  feed_u64(crc, d.local_bytes_written);
  feed_u64(crc, d.partner_bytes_written);
  feed_u64(crc, d.io_logical_bytes);
  feed_u64(crc, d.io_bytes_written);
  feed_u64(crc, d.dedup_new_bytes);
  feed_u64(crc, d.dedup_dup_bytes);
  feed_u64(crc, d.chain_links);
  feed_u64(crc, d.chain_replays);
}

std::string default_name(std::uint32_t tenant_id) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "t%04u", tenant_id);
  return buf;
}

}  // namespace

const char* to_string(SvcStatus status) {
  switch (status) {
    case SvcStatus::kOk: return "ok";
    case SvcStatus::kQueued: return "queued";
    case SvcStatus::kThrottled: return "throttled";
    case SvcStatus::kDeniedBackpressure: return "denied_backpressure";
    case SvcStatus::kDeniedQuota: return "denied_quota";
    case SvcStatus::kDegraded: return "degraded";
    case SvcStatus::kNoCheckpoint: return "no_checkpoint";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Session

Session::Session(CheckpointService& service, std::uint32_t tenant_id,
                 TenantSpec spec)
    : service_(service), tenant_id_(tenant_id), spec_(std::move(spec)) {
  quota_.byte_budget = spec_.qos.quota_bytes;
  quota_.op_budget = spec_.qos.quota_ops;

  const SvcConfig& cfg = service_.config_;
  ckpt::MultilevelConfig mc;
  mc.app_id = tenant_id_ + 1;
  mc.node_count = spec_.ranks;
  mc.nvm_capacity_bytes = cfg.per_rank_nvm_bytes;
  mc.partner_every = spec_.partner_every;
  mc.io_every = spec_.io_every;
  mc.io_codec = spec_.io_codec;
  mc.io_codec_level =
      spec_.io_codec == compress::CodecId::kNull ? 0 : 1;
  mc.io_writer_depth = cfg.io_writer_depth;
  mc.pool = cfg.pool;
  if (spec_.delta_chain > 0) {
    mc.delta.enabled = true;
    mc.delta.chain_length = spec_.delta_chain;
    mc.delta.block_bytes = spec_.delta_block_bytes;
  }
  mc.local_write_hook = spec_.local_write_hook;
  // Every remote level is a window onto the service's shared devices: the
  // IO view carries this tenant's quota; partner host spaces get one
  // sub-slot each. The optional decorator (fault injection) wraps the
  // view, so injected damage lands inside this tenant's namespace only.
  mc.store_factory = [this](ckpt::StoreLevel level, std::uint32_t host)
      -> std::unique_ptr<ckpt::KvStore> {
    std::unique_ptr<ckpt::KvStore> view;
    if (level == ckpt::StoreLevel::kIo) {
      view = std::make_unique<ckpt::TenantStoreView>(
          service_.io_base_, tenant_id_, spec_.ranks, &quota_);
    } else {
      view = std::make_unique<ckpt::TenantStoreView>(
          service_.partner_base_, tenant_id_, spec_.ranks, nullptr,
          host + 1);
    }
    if (spec_.store_decorator) {
      return spec_.store_decorator(level, host, std::move(view));
    }
    return view;
  };
  manager_ = std::make_unique<ckpt::MultilevelManager>(mc);
}

bool Session::need_checkpoint(std::size_t bytes) const {
  // Preview admission: admit() with preview set mutates nothing.
  auto& self = const_cast<Session&>(*this);
  return self.service_.admit(self, bytes, /*preview=*/true) ==
         SvcStatus::kQueued;
}

SvcStatus Session::start_checkpoint(const std::vector<ByteSpan>& payloads) {
  if (payloads.size() != spec_.ranks) {
    throw std::invalid_argument("svc: payload count != tenant ranks");
  }
  std::size_t bytes = 0;
  for (const ByteSpan p : payloads) bytes += p.size();
  const SvcStatus status = service_.admit(*this, bytes, /*preview=*/false);
  if (status != SvcStatus::kQueued) {
    if (service_.tracing()) {
      service_.config_.trace->instant(
          "refuse", "svc", tenant_id_,
          {obs::str("status", to_string(status)), obs::u64("bytes", bytes)});
    }
    return status;
  }
  StagedJob job;
  job.bytes = bytes;
  job.submit_vt = service_.vt_;
  job.payloads.reserve(payloads.size());
  for (const ByteSpan p : payloads) job.payloads.emplace_back(p.begin(), p.end());
  pending_.push_back(std::move(job));
  ++service_.backlog_jobs_;
  service_.backlog_bytes_ += bytes;
  ++stats_.accepted;
  if (service_.tracing()) {
    service_.config_.trace->instant("stage", "svc", tenant_id_,
                                    {obs::u64("bytes", bytes)});
  }
  return SvcStatus::kQueued;
}

SvcStatus Session::commit() {
  // Work-conserving: pumping serves every backlogged tenant in fair
  // order, so waiting for our own queue can never starve a neighbor.
  // Termination: a backlogged session's deficit grows by at least one
  // quantum per round, so any staged cost is eventually covered.
  while (!pending_.empty()) service_.pump_round();
  if (latest_ == 0) return SvcStatus::kNoCheckpoint;
  return manager_->health().any_degraded() ? SvcStatus::kDegraded
                                           : SvcStatus::kOk;
}

std::optional<Session::Restart> Session::restart() {
  ++stats_.restarts;
  auto recovery = manager_->recover();
  if (!recovery) return std::nullopt;
  Restart out;
  out.checkpoint_id = recovery->checkpoint_id;
  out.payloads = std::move(recovery->payloads);
  return out;
}

std::size_t Session::nvm_used_bytes() const {
  std::size_t used = 0;
  for (std::uint32_t rank = 0; rank < spec_.ranks; ++rank) {
    used += manager_->local_store(rank).used_bytes();
  }
  return used;
}

std::uint32_t Session::fingerprint() const {
  Crc32 crc;
  feed_u64(crc, stats_.accepted);
  feed_u64(crc, stats_.throttled);
  feed_u64(crc, stats_.denied_backpressure);
  feed_u64(crc, stats_.denied_quota);
  feed_u64(crc, stats_.committed);
  feed_u64(crc, stats_.committed_bytes);
  feed_u64(crc, stats_.restarts);
  feed_u64(crc, latest_);
  feed_u64(crc, quota_.bytes_charged);
  feed_u64(crc, quota_.ops_charged);
  feed_u64(crc, quota_.write_denials);
  feed_u64(crc, faults::health_fingerprint(manager_->health()));
  feed_data_path(crc, manager_->data_path());
  return crc.value();
}

// ---------------------------------------------------------------------------
// CheckpointService

CheckpointService::CheckpointService(const SvcConfig& config)
    : config_(config) {}

CheckpointService::~CheckpointService() = default;

bool CheckpointService::tracing() const {
  return config_.trace != nullptr && config_.trace->enabled();
}

Session& CheckpointService::open_session(TenantSpec spec) {
  if (spec.ranks == 0 || spec.ranks >= ckpt::kTenantSubSlotStride) {
    throw std::invalid_argument("svc: tenant ranks out of range");
  }
  const auto tenant_id = static_cast<std::uint32_t>(sessions_.size());
  if (spec.name.empty()) spec.name = default_name(tenant_id);
  sessions_.push_back(std::unique_ptr<Session>(
      new Session(*this, tenant_id, std::move(spec))));
  Session& session = *sessions_.back();
  if (tracing()) {
    config_.trace->set_track_name(tenant_id, "svc " + session.spec_.name);
  }
  return session;
}

SvcStatus CheckpointService::admit(Session& session, std::size_t bytes,
                                   bool preview) {
  if (session.quota_.exhausted()) {
    if (!preview) ++session.stats_.denied_quota;
    return SvcStatus::kDeniedQuota;
  }
  const double budget = static_cast<double>(config_.shared_nvm_bytes);
  const auto projected = static_cast<double>(nvm_used_bytes() +
                                             backlog_bytes_ + bytes);
  if (projected > config_.hard_fraction * budget) {
    if (!preview) ++session.stats_.denied_backpressure;
    return SvcStatus::kDeniedBackpressure;
  }
  if (projected > config_.soft_fraction * budget) {
    // Degrade-to-lower-frequency: admit every degrade_factor-th attempt.
    if (session.throttle_skip_ > 0) {
      if (!preview) {
        --session.throttle_skip_;
        ++session.stats_.throttled;
      }
      return SvcStatus::kThrottled;
    }
    if (!preview && config_.degrade_factor > 1) {
      session.throttle_skip_ = config_.degrade_factor - 1;
    }
    return SvcStatus::kQueued;
  }
  if (!preview) session.throttle_skip_ = 0;
  return SvcStatus::kQueued;
}

std::size_t CheckpointService::pump_round() {
  ++rounds_;
  std::size_t done = 0;
  for (const auto& sp : sessions_) {
    Session& s = *sp;
    if (s.pending_.empty()) {
      s.deficit_ = 0;  // classic DRR: no banking while idle
      continue;
    }
    s.deficit_ += config_.scheduler_quantum *
                  std::max<std::uint32_t>(1, s.spec_.qos.weight);
    while (!s.pending_.empty()) {
      const auto cost =
          std::max<std::uint64_t>(1, s.pending_.front().bytes);
      if (s.deficit_ < cost) break;
      s.deficit_ -= cost;
      Session::StagedJob job = std::move(s.pending_.front());
      s.pending_.pop_front();
      execute(s, std::move(job));
      ++done;
    }
    if (s.pending_.empty()) s.deficit_ = 0;
  }
  return done;
}

void CheckpointService::drain() {
  while (backlog_jobs_ > 0) pump_round();
}

void CheckpointService::execute(Session& session, Session::StagedJob job) {
  std::vector<ByteSpan> views(job.payloads.begin(), job.payloads.end());
  const std::uint64_t id = session.manager_->commit(views);
  --backlog_jobs_;
  backlog_bytes_ -= job.bytes;
  // Virtual clock: the shared IO path serves one checkpoint at a time,
  // so completion time is the running clock plus this job's service
  // time. Latency = completion - staging time; a starved tenant's queue
  // wait is visible here.
  vt_ += static_cast<double>(job.bytes) / config_.io_bandwidth +
         config_.io_op_seconds;
  session.latency_.record(std::max(vt_ - job.submit_vt, 1e-9));
  session.latest_ = id;
  ++session.stats_.committed;
  session.stats_.committed_bytes += job.bytes;
  ++completions_;
  feed_u64(completion_crc_, session.tenant_id_);
  feed_u64(completion_crc_, id);
  feed_u64(completion_crc_, job.bytes);
  if (tracing()) {
    config_.trace->instant("commit", "svc", session.tenant_id_,
                           {obs::u64("id", id),
                            obs::u64("bytes", job.bytes)});
  }
}

std::size_t CheckpointService::nvm_used_bytes() const {
  std::size_t used = 0;
  for (const auto& sp : sessions_) used += sp->nvm_used_bytes();
  return used;
}

double CheckpointService::jain_io() const {
  std::vector<double> shares;
  shares.reserve(sessions_.size());
  for (const auto& sp : sessions_) {
    shares.push_back(
        static_cast<double>(sp->manager().data_path().io_bytes_written));
  }
  return obs::jain_index(shares);
}

double CheckpointService::jain_io_weighted() const {
  std::vector<double> shares;
  shares.reserve(sessions_.size());
  for (const auto& sp : sessions_) {
    const double w = std::max<std::uint32_t>(1, sp->spec().qos.weight);
    shares.push_back(
        static_cast<double>(sp->manager().data_path().io_bytes_written) /
        w);
  }
  return obs::jain_index(shares);
}

void CheckpointService::export_metrics(obs::MetricsRegistry& metrics,
                                       std::string_view prefix) const {
  const std::string base(prefix);
  for (const auto& sp : sessions_) {
    const Session& s = *sp;
    const std::string p = base + "." + s.spec().name;
    const Session::Stats& st = s.stats();
    metrics.counter(p + ".accepted").add(st.accepted);
    metrics.counter(p + ".throttled").add(st.throttled);
    metrics.counter(p + ".denied_backpressure").add(st.denied_backpressure);
    metrics.counter(p + ".denied_quota").add(st.denied_quota);
    metrics.counter(p + ".commits").add(st.committed);
    metrics.counter(p + ".committed_bytes").add(st.committed_bytes);
    metrics.counter(p + ".restarts").add(st.restarts);
    metrics.counter(p + ".io_bytes")
        .add(s.manager().data_path().io_bytes_written);
    metrics.counter(p + ".quota_write_denials").add(s.quota().write_denials);
    metrics.gauge(p + ".weight")
        .set(static_cast<double>(s.spec().qos.weight));
    metrics.gauge(p + ".latency_p50").set(s.commit_latency().p50());
    metrics.gauge(p + ".latency_p99").set(s.commit_latency().p99());
  }
  metrics.gauge(base + ".fairness.jain_io").set(jain_io());
  metrics.gauge(base + ".fairness.jain_io_weighted").set(jain_io_weighted());
  metrics.gauge(base + ".nvm.used_bytes")
      .set(static_cast<double>(nvm_used_bytes()));
  metrics.gauge(base + ".nvm.budget_bytes")
      .set(static_cast<double>(config_.shared_nvm_bytes));
  metrics.gauge(base + ".virtual_time").set(vt_);
  metrics.counter(base + ".rounds").add(rounds_);
  metrics.counter(base + ".completions").add(completions_);
  metrics.counter(base + ".backlog_jobs").add(backlog_jobs_);
}

std::uint32_t CheckpointService::fingerprint() const {
  Crc32 crc = completion_crc_;  // running completion-sequence hash
  for (const auto& sp : sessions_) {
    feed_u64(crc, sp->fingerprint());
    feed_u64(crc, sp->commit_latency().count());
    feed_double(crc, sp->commit_latency().sum());
  }
  feed_double(crc, vt_);
  feed_u64(crc, rounds_);
  feed_u64(crc, completions_);
  feed_u64(crc, backlog_jobs_);
  feed_u64(crc, backlog_bytes_);
  return crc.value();
}

}  // namespace ndpcr::svc
