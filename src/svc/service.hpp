#pragma once

// Multi-tenant checkpoint service (docs/SERVICE.md): one CheckpointService
// multiplexes N independent tenant Sessions over shared storage - one
// shared IO (PFS) device, one shared partner device, an aggregate local
// NVM budget - and one exec::TaskPool. Each session wraps its own
// MultilevelManager behind an SCR-style client API:
//
//   need_checkpoint()   - would the service admit a checkpoint right now?
//   start_checkpoint()  - stage this checkpoint (admission-controlled)
//   commit()            - drive the shared scheduler until it lands
//   latest()            - the latest-pointer: the newest *fully committed*
//                         checkpoint id (advances only at completion)
//   restart()           - recover the latest restorable checkpoint
//
// What single-tenant code never needed, the service adds:
//
//   Fair-share scheduling. Staged checkpoints do not run immediately:
//   they queue per tenant, and a deficit-round-robin scheduler
//   (pump_round) picks which tenant's checkpoint commits next. Every
//   round each backlogged tenant earns quantum * qos.weight deficit
//   bytes and commits staged checkpoints while its deficit covers their
//   cost, so long-run shared-IO throughput is proportional to weight
//   while light tenants still progress every round.
//
//   Admission control and backpressure. Shared local NVM is a finite
//   budget (SvcConfig::shared_nvm_bytes). Above the soft watermark a
//   tenant is throttled to every degrade_factor-th attempt (checkpoint
//   frequency degrades instead of neighbors' data); above the hard
//   watermark staging is denied outright. Both outcomes are typed
//   SvcStatus values, never exceptions.
//
//   Per-tenant quotas at the store seam. Each session's IO traffic flows
//   through a ckpt::TenantStoreView carrying the tenant's StoreQuota:
//   writes beyond the grant fail with a typed permanent error, the
//   manager's self-healing degrades that tenant's IO level, and commits
//   continue on the surviving levels. A tenant whose grant is fully
//   exhausted is refused new staging (kDeniedQuota); reads are never
//   denied, so restart always works.
//
//   Observability. export_metrics publishes per-tenant counters,
//   per-tenant p50/p99 commit-latency gauges (on the service's virtual
//   clock) and Jain fairness indices through obs::MetricsRegistry; with
//   a tracer, every tenant gets its own track of scheduler events.
//
// Determinism contract: the service is externally synchronized (one
// caller thread, like AsyncStageWriter) and every commit executes
// serially in scheduler order - only the *inside* of a commit fans out
// over the TaskPool. Admission, scheduling and the virtual clock are
// pure functions of the call sequence, so service fingerprints are
// bit-identical at any pool size, and a tenant's own fingerprint depends
// only on its own traffic and fault schedule - never on a neighbor's
// faults (the isolation property svc_test and the chaos soak pin).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "ckpt/tenant_store.hpp"
#include "common/crc32.hpp"
#include "obs/metrics.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::obs {
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::svc {

enum class SvcStatus {
  kOk,                  // done; all levels healthy
  kQueued,              // staged; will commit in scheduler order
  kThrottled,           // soft backpressure: retry at lower frequency
  kDeniedBackpressure,  // hard backpressure: shared NVM budget exhausted
  kDeniedQuota,         // tenant's IO grant is fully exhausted
  kDegraded,            // done, but a storage level is degraded
  kNoCheckpoint,        // restart found nothing restorable
};

const char* to_string(SvcStatus status);

// Per-tenant quality of service: the DRR weight shares the shared IO
// level, the quota meters the tenant's lifetime traffic through it.
struct TenantQos {
  std::uint32_t weight = 1;
  std::uint64_t quota_bytes = 0;  // lifetime IO put bytes; 0 = unmetered
  std::uint64_t quota_ops = 0;    // lifetime IO ops; 0 = unmetered
};

struct TenantSpec {
  std::string name;  // metric/trace key; "" = generated ("t0007")
  std::uint32_t ranks = 1;
  std::uint32_t partner_every = 1;
  std::uint32_t io_every = 1;
  compress::CodecId io_codec = compress::CodecId::kNull;
  std::uint32_t delta_chain = 0;  // > 0 enables delta images
  std::size_t delta_block_bytes = 512;
  TenantQos qos;
  // Optional decorator over the tenant's shared-store views (the chaos
  // soak installs faults::FaultyStoreProxy here). Receives the view it
  // must forward to; identity when null.
  std::function<std::unique_ptr<ckpt::KvStore>(
      ckpt::StoreLevel level, std::uint32_t host,
      std::unique_ptr<ckpt::KvStore> view)>
      store_decorator;
  // Forwarded to MultilevelConfig::local_write_hook (torn/bit-flipped
  // local NVM writes; the commit path's verify readback catches them).
  std::function<void(std::uint32_t, std::uint64_t, Bytes&)> local_write_hook;
};

struct SvcConfig {
  std::uint64_t seed = 1;
  // Aggregate local-NVM budget across every tenant's ranks, and the
  // watermarks: above soft * budget new checkpoints are throttled, above
  // hard * budget they are denied.
  std::size_t shared_nvm_bytes = 64ull << 20;
  double soft_fraction = 0.75;
  double hard_fraction = 0.90;
  std::uint32_t degrade_factor = 4;  // admit 1 of N while throttled
  // Per-rank NvmStore capacity handed to each manager.
  std::size_t per_rank_nvm_bytes = 1ull << 20;
  // DRR quantum: deficit bytes a weight-1 tenant earns per round.
  std::uint64_t scheduler_quantum = 4096;
  // Virtual IO model for commit-latency accounting (deterministic; never
  // wall clock): each committed checkpoint advances the service clock by
  // bytes / io_bandwidth + io_op_seconds.
  double io_bandwidth = 1ull << 30;
  double io_op_seconds = 1e-4;
  std::size_t io_writer_depth = 2;  // forwarded to every manager
  exec::TaskPool* pool = nullptr;   // null = exec::global_pool()
  obs::Tracer* trace = nullptr;     // per-tenant scheduler event tracks
};

class CheckpointService;

class Session {
 public:
  struct Restart {
    std::uint64_t checkpoint_id = 0;
    std::vector<Bytes> payloads;  // one per rank
  };

  struct Stats {
    std::uint64_t accepted = 0;             // staged checkpoints
    std::uint64_t throttled = 0;            // soft-backpressure refusals
    std::uint64_t denied_backpressure = 0;  // hard-backpressure refusals
    std::uint64_t denied_quota = 0;         // exhausted-grant refusals
    std::uint64_t committed = 0;            // checkpoints fully committed
    std::uint64_t committed_bytes = 0;      // payload bytes committed
    std::uint64_t restarts = 0;             // restart() calls
  };

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // SCR-style client API -------------------------------------------------

  // Would start_checkpoint admit a checkpoint of `bytes` payload right
  // now? Pure preview: charges nothing, advances no throttle state.
  [[nodiscard]] bool need_checkpoint(std::size_t bytes = 0) const;

  // Stage one coordinated checkpoint (payloads[r] = rank r's state).
  // Returns kQueued on success; a refusal is typed and stages nothing.
  // Throws std::invalid_argument if payloads.size() != spec().ranks.
  SvcStatus start_checkpoint(const std::vector<ByteSpan>& payloads);

  // Drive the shared scheduler (in fair order, serving other tenants'
  // queues too) until every checkpoint this session staged has committed.
  // kOk when the session's levels are all healthy, kDegraded otherwise.
  SvcStatus commit();

  // Latest-pointer: the newest fully committed checkpoint id (0 = none).
  // Advances only when a staged checkpoint completes, never at staging.
  [[nodiscard]] std::uint64_t latest() const { return latest_; }

  // Recover the newest restorable checkpoint from this tenant's levels.
  [[nodiscard]] std::optional<Restart> restart();

  // Introspection --------------------------------------------------------

  [[nodiscard]] const TenantSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t tenant_id() const { return tenant_id_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ckpt::StoreQuota& quota() const { return quota_; }
  [[nodiscard]] std::size_t pending_jobs() const { return pending_.size(); }
  [[nodiscard]] const ckpt::MultilevelManager& manager() const {
    return *manager_;
  }
  [[nodiscard]] const obs::Histogram& commit_latency() const {
    return latency_;
  }
  // Local NVM bytes this session's ranks currently hold.
  [[nodiscard]] std::size_t nvm_used_bytes() const;

  // CRC32 over everything tenant-local: admission outcomes, committed
  // ids/bytes, quota counters, manager health and data-path counters.
  // Thread-count-invariant, and - the isolation property - independent of
  // every other tenant's fault schedule.
  [[nodiscard]] std::uint32_t fingerprint() const;

 private:
  friend class CheckpointService;

  struct StagedJob {
    std::vector<Bytes> payloads;
    std::size_t bytes = 0;
    double submit_vt = 0.0;
  };

  Session(CheckpointService& service, std::uint32_t tenant_id,
          TenantSpec spec);

  CheckpointService& service_;
  std::uint32_t tenant_id_;
  TenantSpec spec_;
  ckpt::StoreQuota quota_;
  std::unique_ptr<ckpt::MultilevelManager> manager_;
  std::deque<StagedJob> pending_;
  std::uint64_t deficit_ = 0;       // DRR deficit bytes
  std::uint32_t throttle_skip_ = 0; // admissions to skip while throttled
  std::uint64_t latest_ = 0;
  Stats stats_;
  obs::Histogram latency_;  // virtual-clock commit latency
};

class CheckpointService {
 public:
  explicit CheckpointService(const SvcConfig& config);
  ~CheckpointService();

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  // Register a tenant. The returned Session is owned by the service and
  // stays valid for the service's lifetime. Tenant ids are assigned in
  // registration order.
  Session& open_session(TenantSpec spec);

  // One deficit-round-robin round over every backlogged session, in
  // tenant order: each earns quantum * weight deficit and commits staged
  // checkpoints while the deficit covers their payload cost. Returns the
  // number of checkpoints committed this round.
  std::size_t pump_round();

  // Pump until no session has staged work.
  void drain();

  [[nodiscard]] const SvcConfig& config() const { return config_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] Session& session(std::size_t i) { return *sessions_[i]; }
  [[nodiscard]] const Session& session(std::size_t i) const {
    return *sessions_[i];
  }
  [[nodiscard]] std::size_t backlog_jobs() const { return backlog_jobs_; }
  [[nodiscard]] std::size_t backlog_bytes() const { return backlog_bytes_; }
  // Aggregate local-NVM residency across every session's ranks.
  [[nodiscard]] std::size_t nvm_used_bytes() const;
  [[nodiscard]] double virtual_time() const { return vt_; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] bool tracing() const;
  // The shared devices (tests inspect cross-tenant residency).
  [[nodiscard]] const ckpt::KvStore& io_device() const { return io_base_; }
  [[nodiscard]] const ckpt::KvStore& partner_device() const {
    return partner_base_;
  }

  // Jain fairness over per-tenant committed IO bytes, raw and normalized
  // by QoS weight (a weighted-fair schedule scores ~1 on the latter).
  [[nodiscard]] double jain_io() const;
  [[nodiscard]] double jain_io_weighted() const;

  // Per-tenant counters/gauges plus service-level fairness and
  // backpressure gauges under `prefix` (e.g. "svc"). Counters are
  // cumulative adds: export once per registry.
  void export_metrics(obs::MetricsRegistry& metrics,
                      std::string_view prefix) const;

  // CRC32 over the completion sequence (tenant, id, cost), every
  // session's fingerprint and latency histogram, the virtual clock and
  // round count. Bit-identical at pool sizes 1/2/8.
  [[nodiscard]] std::uint32_t fingerprint() const;

 private:
  friend class Session;

  // Admission decision for a checkpoint of `bytes` staged by `session`.
  // kQueued admits; anything else refuses (and advances throttle state
  // unless `preview`).
  SvcStatus admit(Session& session, std::size_t bytes, bool preview);
  void execute(Session& session, Session::StagedJob job);

  SvcConfig config_;
  ckpt::KvStore io_base_;       // shared IO (PFS) device
  ckpt::KvStore partner_base_;  // shared partner-space device
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t backlog_jobs_ = 0;
  std::size_t backlog_bytes_ = 0;
  double vt_ = 0.0;  // virtual clock; advances per committed checkpoint
  std::uint64_t rounds_ = 0;
  std::uint64_t completions_ = 0;
  Crc32 completion_crc_;  // running (tenant, id, cost) sequence hash
};

}  // namespace ndpcr::svc
