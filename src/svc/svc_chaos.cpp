#include "svc/svc_chaos.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"  // chaos_payload / chaos_sparse_update
#include "faults/faulty_stores.hpp"
#include "obs/metrics.hpp"

namespace ndpcr::svc {
namespace {

void feed_u64(Crc32& crc, std::uint64_t v) { crc.update(&v, sizeof v); }

void violation(SvcChaosReport& report, std::string note) {
  ++report.violations;
  if (report.violation_notes.size() < 8) {
    report.violation_notes.push_back(
        "seed " + std::to_string(report.seed) + ": " + std::move(note));
  }
}

}  // namespace

SvcChaosReport run_svc_chaos(const SvcChaosConfig& config) {
  SvcChaosReport report;
  report.seed = config.seed;
  report.tenants = config.tenants;

  const std::size_t per_rank_nvm = (config.payload_bytes + 4096) * 4;

  // Tenant population: heterogeneous on purpose. Ranks, weights, IO
  // cadence, codec and delta policy all rotate by tenant id, so the
  // shared devices see realistically mixed traffic.
  std::uint64_t total_ranks = 0;
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    total_ranks += 1 + (t % 2);
  }

  SvcConfig sc;
  sc.seed = config.seed;
  sc.per_rank_nvm_bytes = per_rank_nvm;
  sc.shared_nvm_bytes =
      config.nvm_budget_fraction > 0.0
          ? static_cast<std::size_t>(config.nvm_budget_fraction *
                                     static_cast<double>(total_ranks) *
                                     static_cast<double>(per_rank_nvm))
          : static_cast<std::size_t>(total_ranks) * per_rank_nvm;
  sc.scheduler_quantum = config.payload_bytes * 2;
  sc.pool = config.pool;
  sc.trace = config.trace;
  CheckpointService service(sc);

  // Per-tenant fault machinery. Outer vectors are sized once: the
  // decorator lambdas capture pointers into them.
  std::vector<std::vector<const faults::FaultyStoreProxy*>> proxies(
      config.tenants);
  std::vector<std::shared_ptr<faults::FaultStats>> local_stats(
      config.tenants);

  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    TenantSpec spec;
    spec.ranks = 1 + (t % 2);
    spec.qos.weight = 1u << (t % 3);  // weights 1 / 2 / 4
    spec.io_every = (t % 7 == 3) ? 2 : 1;
    spec.partner_every = 1;
    if (t % 16 == 5) spec.io_codec = compress::CodecId::kRle;
    if (t % 4 == 1) spec.delta_chain = 3;
    if (config.quota_every > 0 && t % config.quota_every ==
                                      config.quota_every - 1) {
      // An IO grant sized to exhaust mid-run: byte headroom runs out for
      // seam denials, the op grant hits exactly for admission denials.
      spec.qos.quota_bytes = static_cast<std::uint64_t>(spec.ranks) *
                             (config.payload_bytes + 512) *
                             std::max<std::uint32_t>(1, config.waves / 2);
      spec.qos.quota_ops =
          static_cast<std::uint64_t>(spec.ranks) * 3 * config.waves;
    }
    const bool faulted = config.faults && config.rates.any() && (t % 2 == 1);
    if (faulted) {
      auto plan = std::make_shared<faults::FaultPlan>(
          exec::sub_seed(config.seed, t, 1), config.rates);
      auto* bucket = &proxies[t];
      spec.store_decorator =
          [plan, bucket](ckpt::StoreLevel level, std::uint32_t host,
                         std::unique_ptr<ckpt::KvStore> view)
          -> std::unique_ptr<ckpt::KvStore> {
        const faults::Target target = level == ckpt::StoreLevel::kIo
                                          ? faults::io_target()
                                          : faults::partner_target(host);
        auto proxy = std::make_unique<faults::FaultyStoreProxy>(
            plan, target, std::move(view));
        bucket->push_back(proxy.get());
        return proxy;
      };
      local_stats[t] = std::make_shared<faults::FaultStats>();
      spec.local_write_hook =
          faults::make_local_write_hook(plan, local_stats[t]);
    }
    service.open_session(std::move(spec));
  }

  // Persistent per-rank tenant state (sparse-update workload), and the
  // committed-payload ledger the restart probes verify against. Each
  // tenant's workload stream is its own sub-seed: what tenant A stages
  // never depends on what happened to tenant B.
  std::vector<Rng> tenant_rng;
  std::vector<std::vector<Bytes>> state(config.tenants);
  tenant_rng.reserve(config.tenants);
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    tenant_rng.emplace_back(exec::sub_seed(config.seed, t, 0));
    const std::uint32_t ranks = service.session(t).spec().ranks;
    state[t].reserve(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      state[t].push_back(
          faults::chaos_payload(tenant_rng[t], config.payload_bytes));
    }
  }
  std::vector<std::deque<std::vector<Bytes>>> staged_copies(config.tenants);
  std::vector<std::vector<std::vector<Bytes>>> committed_payloads(
      config.tenants);
  std::vector<std::uint64_t> recorded(config.tenants, 0);

  // Move staged copies to the committed ledger as the scheduler lands
  // them (per-tenant FIFO; manager ids are sequential from 1).
  auto settle = [&] {
    for (std::uint32_t t = 0; t < config.tenants; ++t) {
      while (recorded[t] < service.session(t).stats().committed) {
        committed_payloads[t].push_back(std::move(staged_copies[t].front()));
        staged_copies[t].pop_front();
        ++recorded[t];
      }
    }
  };

  auto probe_restart = [&](std::uint32_t t) {
    Session& s = service.session(t);
    ++report.restarts;
    auto restart = s.restart();
    if (!restart) {
      if (s.latest() != 0) {
        violation(report, "tenant " + std::to_string(t) +
                              " has latest " + std::to_string(s.latest()) +
                              " but failed to restart");
      } else {
        ++report.no_checkpoint;
      }
      return;
    }
    ++report.restored;
    const std::uint64_t id = restart->checkpoint_id;
    if (id > s.latest()) {
      violation(report, "tenant " + std::to_string(t) + " restarted id " +
                            std::to_string(id) + " newer than latest " +
                            std::to_string(s.latest()));
      return;
    }
    if (id == 0 || id > committed_payloads[t].size()) {
      violation(report, "tenant " + std::to_string(t) +
                            " restarted an id never committed");
      return;
    }
    const std::vector<Bytes>& expect = committed_payloads[t][id - 1];
    for (std::uint32_t r = 0; r < s.spec().ranks; ++r) {
      if (restart->payloads[r] != expect[r]) {
        violation(report, "tenant " + std::to_string(t) + " rank " +
                              std::to_string(r) +
                              " payload mismatch at id " +
                              std::to_string(id));
      }
    }
  };

  // The seeded schedule: every draw below happens unconditionally, so
  // the interleaving is a pure function of the seed - fault outcomes and
  // admission refusals can never shift it.
  Rng sched(exec::sub_seed(config.seed, 0x5C4ED, 0));
  std::vector<std::uint32_t> order(config.tenants);
  for (std::uint32_t t = 0; t < config.tenants; ++t) order[t] = t;

  for (std::uint32_t wave = 0; wave < config.waves; ++wave) {
    // Fisher-Yates over the staging order.
    for (std::uint32_t i = config.tenants; i > 1; --i) {
      const auto j = static_cast<std::uint32_t>(sched.next_below(i));
      std::swap(order[i - 1], order[j]);
    }
    for (const std::uint32_t t : order) {
      Session& s = service.session(t);
      for (std::uint32_t r = 0; r < s.spec().ranks; ++r) {
        faults::chaos_sparse_update(tenant_rng[t], state[t][r],
                                    config.update_fraction);
      }
      std::vector<ByteSpan> views(state[t].begin(), state[t].end());
      const SvcStatus status = s.start_checkpoint(views);
      if (status == SvcStatus::kQueued) {
        staged_copies[t].push_back(state[t]);  // copy: the ledger's truth
      }
      if (sched.next_double() < 0.25) {
        service.pump_round();
        settle();
      }
    }
    const std::uint64_t extra_rounds = sched.next_below(3) + 1;
    for (std::uint64_t i = 0; i < extra_rounds; ++i) service.pump_round();
    settle();
    for (std::uint32_t t = 0; t < config.tenants; ++t) {
      if (sched.next_double() < config.p_restart) probe_restart(t);
    }
  }
  service.drain();
  settle();
  // Every run ends with a full sweep: all tenants must restart clean.
  for (std::uint32_t t = 0; t < config.tenants; ++t) probe_restart(t);

  // Aggregate outcomes.
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    const Session& s = service.session(t);
    const Session::Stats& st = s.stats();
    report.staged += st.accepted;
    report.committed += st.committed;
    report.throttled += st.throttled;
    report.denied_backpressure += st.denied_backpressure;
    report.denied_quota += st.denied_quota;
    report.quota_write_denials += s.quota().write_denials;
    for (const faults::FaultyStoreProxy* proxy : proxies[t]) {
      report.fault_injections += proxy->stats().injected();
    }
    if (local_stats[t]) report.fault_injections += local_stats[t]->injected();
    report.tenant_fingerprints.push_back(s.fingerprint());
  }
  report.jain_io = service.jain_io();
  report.jain_io_weighted = service.jain_io_weighted();
  report.virtual_time = service.virtual_time();
  report.service_fingerprint = service.fingerprint();

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    service.export_metrics(m, "svc");
    m.counter("svc.chaos.staged").add(report.staged);
    m.counter("svc.chaos.committed").add(report.committed);
    m.counter("svc.chaos.throttled").add(report.throttled);
    m.counter("svc.chaos.denied_backpressure")
        .add(report.denied_backpressure);
    m.counter("svc.chaos.denied_quota").add(report.denied_quota);
    m.counter("svc.chaos.restarts").add(report.restarts);
    m.counter("svc.chaos.restored").add(report.restored);
    m.counter("svc.chaos.fault_injections").add(report.fault_injections);
    m.counter("svc.chaos.violations").add(report.violations);
  }

  Crc32 crc;
  feed_u64(crc, report.staged);
  feed_u64(crc, report.committed);
  feed_u64(crc, report.throttled);
  feed_u64(crc, report.denied_backpressure);
  feed_u64(crc, report.denied_quota);
  feed_u64(crc, report.quota_write_denials);
  feed_u64(crc, report.restarts);
  feed_u64(crc, report.restored);
  feed_u64(crc, report.no_checkpoint);
  feed_u64(crc, report.fault_injections);
  feed_u64(crc, report.violations);
  for (const std::uint32_t fp : report.tenant_fingerprints) {
    feed_u64(crc, fp);
  }
  feed_u64(crc, report.service_fingerprint);
  report.fingerprint = crc.value();
  return report;
}

}  // namespace ndpcr::svc
