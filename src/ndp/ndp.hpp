#pragma once

// NDP device sizing and pipeline timing (sections 4.4 and 5.3).
//
// The NDP's job is compressing checkpoints and streaming them to global
// I/O off the host's critical path. Its useful compression rate is
// bracketed by two bounds the paper derives:
//   lower: the per-node I/O bandwidth (slower compression than the link
//          can absorb makes compression a net loss), and
//   upper: Compression_rate = (U/C) * IO_bandwidth - any faster merely
//          idles against the saturated link.

namespace ndpcr::ndp {

// Upper useful compression rate (bytes of *uncompressed* input per second)
// for a given compression factor (1 - C/U) and per-node IO bandwidth:
//   (U/C) * io_bw = io_bw / (1 - factor).
double saturating_compression_rate(double compression_factor, double io_bw);

// NDP cores needed to reach `required_rate` given a single-core rate,
// rounded up (Table 3's "Number of Cores" column).
int required_cores(double required_rate, double per_core_rate);

// Smallest achievable interval between checkpoints arriving at global IO:
// the time to push one compressed checkpoint through the per-node IO
// bandwidth (Table 3's "Checkpoint Interval" column).
double min_io_interval(double checkpoint_bytes, double compression_factor,
                       double io_bw);

// Time for the NDP to fully drain one checkpoint of `checkpoint_bytes`
// through compression (at `compress_rate` uncompressed bytes/s) and the IO
// link. With `overlapped` (section 4.2.2's pipelined DMA blocks) the drain
// is bounded by the slower stage; serial mode sums the stages.
// compress_rate <= 0 means no compression (pure IO write).
double drain_time(double checkpoint_bytes, double compression_factor,
                  double compress_rate, double io_bw, bool overlapped = true);

// One row of Table 3, derived from a codec's measured average compression
// factor and single-thread speed.
struct NdpSizing {
  double required_rate = 0.0;   // B/s of uncompressed input
  int cores = 0;                // NDP cores to reach it
  double io_interval = 0.0;     // smallest IO checkpoint interval (s)
};

NdpSizing derive_sizing(double compression_factor, double per_core_rate,
                        double checkpoint_bytes, double io_bw);

}  // namespace ndpcr::ndp
