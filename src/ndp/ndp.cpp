#include "ndp/ndp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndpcr::ndp {

double saturating_compression_rate(double compression_factor, double io_bw) {
  if (compression_factor < 0.0 || compression_factor >= 1.0) {
    throw std::invalid_argument("compression factor must be in [0, 1)");
  }
  if (io_bw <= 0.0) throw std::invalid_argument("io_bw must be positive");
  return io_bw / (1.0 - compression_factor);
}

int required_cores(double required_rate, double per_core_rate) {
  if (per_core_rate <= 0.0) {
    throw std::invalid_argument("per-core rate must be positive");
  }
  return static_cast<int>(std::ceil(required_rate / per_core_rate));
}

double min_io_interval(double checkpoint_bytes, double compression_factor,
                       double io_bw) {
  if (io_bw <= 0.0) throw std::invalid_argument("io_bw must be positive");
  return checkpoint_bytes * (1.0 - compression_factor) / io_bw;
}

double drain_time(double checkpoint_bytes, double compression_factor,
                  double compress_rate, double io_bw, bool overlapped) {
  const double write_time =
      checkpoint_bytes * (1.0 - compression_factor) / io_bw;
  if (compress_rate <= 0.0) return write_time;  // uncompressed stream
  const double compress_time = checkpoint_bytes / compress_rate;
  return overlapped ? std::max(compress_time, write_time)
                    : compress_time + write_time;
}

NdpSizing derive_sizing(double compression_factor, double per_core_rate,
                        double checkpoint_bytes, double io_bw) {
  NdpSizing s;
  s.required_rate = saturating_compression_rate(compression_factor, io_bw);
  s.cores = required_cores(s.required_rate, per_core_rate);
  s.io_interval = min_io_interval(checkpoint_bytes, compression_factor,
                                  io_bw);
  return s;
}

}  // namespace ndpcr::ndp
