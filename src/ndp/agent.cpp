#include "ndp/agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "ckpt/store_writer.hpp"
#include "obs/trace.hpp"

namespace ndpcr::ndp {
namespace {

// Delta drain wire frame: magic(4) kind(1) base_id(8) payload.
constexpr std::uint32_t kFrameMagic = 0x4E444652;  // "NDFR"
constexpr std::size_t kFrameHeader = 4 + 1 + 8;

}  // namespace

Bytes NdpAgent::build_frame(ckpt::PayloadKind kind, std::uint64_t base_id,
                            ByteSpan payload) {
  Bytes out;
  out.reserve(kFrameHeader + payload.size());
  append_le<std::uint32_t>(out, kFrameMagic);
  append_le<std::uint8_t>(out, static_cast<std::uint8_t>(kind));
  append_le<std::uint64_t>(out, base_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<NdpAgent::Frame> NdpAgent::parse_frame(ByteSpan raw) {
  if (raw.size() < kFrameHeader ||
      read_le<std::uint32_t>(raw, 0) != kFrameMagic) {
    return std::nullopt;
  }
  const auto kind = read_le<std::uint8_t>(raw, 4);
  if (kind > static_cast<std::uint8_t>(ckpt::PayloadKind::kDelta)) {
    return std::nullopt;
  }
  Frame frame;
  frame.kind = static_cast<ckpt::PayloadKind>(kind);
  frame.base_id = read_le<std::uint64_t>(raw, 5);
  const ByteSpan payload = raw.subspan(kFrameHeader);
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

NdpAgent::NdpAgent(const AgentConfig& config, ckpt::KvStore& io_store)
    : cfg_(config),
      io_(io_store),
      uncompressed_(config.uncompressed_capacity),
      compressed_(config.compressed_capacity),
      trace_(config.trace ? config.trace : &obs::Tracer::null()) {
  if (cfg_.compress_bw <= 0 || cfg_.io_bw <= 0) {
    throw std::invalid_argument("agent bandwidths must be positive");
  }
  if (cfg_.chunk_bytes == 0) {
    throw std::invalid_argument("agent chunk_bytes must be positive");
  }
  if (cfg_.codec != compress::CodecId::kNull) {
    codec_.emplace(cfg_.codec, cfg_.codec_level, cfg_.chunk_bytes,
                   std::max(1u, cfg_.codec_threads));
    codec_->warm(std::max(1u, cfg_.codec_threads));
  }
  if (cfg_.delta_chain > 0) {
    if (cfg_.delta_block_bytes == 0) {
      throw std::invalid_argument("agent delta_block_bytes must be positive");
    }
    if (cfg_.delta_bw <= 0) {
      throw std::invalid_argument("agent delta_bw must be positive");
    }
    delta_codec_.emplace(cfg_.delta_block_bytes);
  }
  if (trace_->enabled()) {
    const std::string base = "ndp r" + std::to_string(cfg_.rank);
    trace_->set_track_name(cfg_.trace_track, base);
    trace_->set_track_name(cfg_.trace_track + 1, base + " compress");
    trace_->set_track_name(cfg_.trace_track + 2, base + " wire");
  }
}

bool NdpAgent::host_commit(std::uint64_t checkpoint_id, Bytes image) {
  const std::size_t bytes = image.size();
  if (!uncompressed_.put(checkpoint_id, std::move(image))) {
    return false;
  }
  ++stats_.commits_seen;
  if (obs::TraceBuffer* rb = trace_->root()) {
    rb->instant_at(vclock_, "host_commit", "ndp", cfg_.trace_track,
                   {obs::u64("id", checkpoint_id),
                    obs::u64("bytes", bytes)});
  }
  if (pending_) {
    // The previously queued checkpoint is superseded before its drain
    // ever started: the NDP always ships the newest.
    ++stats_.drains_skipped;
    if (obs::TraceBuffer* rb = trace_->root()) {
      rb->instant_at(vclock_, "drain_skipped", "ndp", cfg_.trace_track,
                     {obs::u64("id", *pending_)});
    }
  }
  pending_ = checkpoint_id;
  start_drain_if_ready();
  return true;
}

void NdpAgent::start_drain_if_ready() {
  if (drain_ || !pending_) return;
  const auto id = *pending_;
  pending_.reset();
  const auto image = uncompressed_.get(id);
  if (!image) return;  // evicted before we got to it

  Drain drain;
  drain.checkpoint_id = id;
  drain.image_size = image->size();
  drain.raw_bytes = image->size();
  drain.start_v = vclock_;
  // Lock the source so the circular buffer cannot reclaim it while the
  // chunk pipeline reads it (section 4.2.2).
  uncompressed_.lock(id);
  drain.locked = true;
  if (obs::TraceBuffer* rb = trace_->root()) {
    rb->instant_at(vclock_, "drain_start", "ndp", cfg_.trace_track,
                   {obs::u64("id", id),
                    obs::u64("bytes", drain.image_size)});
  }

  if (delta_codec_) {
    // Delta drain mode: the pipeline ships a frame, delta-encoded against
    // the last image that landed on IO when the chain allows it. The
    // encode happens here (the bytes are needed to size the chunk
    // pipeline); its virtual cost is the preprocess stage consumed before
    // the first chunk compresses.
    const bool as_delta = last_shipped_ && last_shipped_->id < id &&
                          links_since_full_ < cfg_.delta_chain;
    if (as_delta) {
      const Bytes stream = delta_codec_->encode(
          ByteSpan(last_shipped_->image), *image, delta_scratch_);
      drain.frame =
          build_frame(ckpt::PayloadKind::kDelta, last_shipped_->id, stream);
      drain.is_delta = true;
      ++stats_.delta_frames;
      stats_.delta_input_bytes += image->size();
      stats_.delta_frame_bytes += stream.size();
    } else {
      drain.frame = build_frame(ckpt::PayloadKind::kFull, 0, *image);
      ++stats_.full_frames;
    }
    drain.framed = true;
    drain.image_size = drain.frame.size();
    drain.preprocess_remaining =
        static_cast<double>(drain.raw_bytes) / cfg_.delta_bw;
    drain.preprocess_start_v = vclock_;
  }

  if (codec_) {
    drain.chunk_count = codec_->chunk_count(drain.image_size);
    drain.chunks.resize(drain.chunk_count);
    if (drain.chunk_count == 0) {
      // Empty image: nothing to pipeline, just the container header on
      // the wire.
      drain.compressed = codec_->compress(*image);
      drain.assembled = true;
      drain.remaining_seconds =
          static_cast<double>(drain.compressed.size()) / cfg_.io_bw;
    }
  } else {
    // Uncompressed mode: a single raw "chunk", write stage only.
    drain.chunk_count = 1;
    drain.chunks.assign(
        1, drain.framed ? drain.frame : Bytes(image->begin(), image->end()));
    drain.compressed_done = 1;
  }
  drain_ = std::move(drain);
}

double NdpAgent::step_pipeline(double budget) {
  auto& d = *drain_;
  double used = 0.0;
  // Delta preprocess stage: the hash-and-compare pass over the raw image
  // runs to completion before the first chunk enters the codec - the
  // frame's bytes are what the chunk pipeline consumes.
  while (budget > 0.0 && d.preprocess_remaining > 0.0) {
    const double step = std::min(budget, d.preprocess_remaining);
    d.preprocess_remaining -= step;
    vclock_ += step;
    budget -= step;
    used += step;
    if (d.preprocess_remaining <= 0.0) {
      if (obs::TraceBuffer* rb = trace_->root()) {
        rb->span_at(d.preprocess_start_v, vclock_, "delta_encode",
                    "ndp.delta", cfg_.trace_track + 1,
                    {obs::u64("id", d.checkpoint_id),
                     obs::u64("in_bytes", d.raw_bytes),
                     obs::u64("frame_bytes", d.frame.size()),
                     obs::u64("delta", d.is_delta ? 1 : 0)});
      }
    }
  }
  if (d.preprocess_remaining > 0.0) return used;
  while (budget > 0.0 && !d.assembled) {
    // Arm the compress stage: the next chunk's bytes are produced now,
    // when its stage begins - the drain's lock keeps the source span
    // valid (delta mode compresses the frame instead) - and its virtual
    // duration is the chunk's input size over the compression bandwidth.
    if (!d.compress_active && codec_ && d.compressed_done < d.chunk_count) {
      if (d.framed) {
        d.chunks[d.compressed_done] =
            codec_->compress_chunk(ByteSpan(d.frame), d.compressed_done);
      } else {
        const auto image = uncompressed_.get(d.checkpoint_id);
        d.chunks[d.compressed_done] =
            codec_->compress_chunk(*image, d.compressed_done);
      }
      const auto extent =
          codec_->chunk_extent(d.image_size, d.compressed_done);
      stats_.bytes_compressed += extent.second;
      d.compress_remaining =
          static_cast<double>(extent.second) / cfg_.compress_bw;
      d.compress_active = true;
      d.compress_start_v = vclock_;
    }
    // Arm the write stage: overlap mode ships chunk j as soon as it left
    // the compressor; serial mode waits for the whole image. The
    // container's header + size table ride on the first write, so the
    // bytes charged to the wire equal the container's size.
    const std::size_t writable =
        cfg_.overlap || d.compressed_done == d.chunk_count
            ? d.compressed_done
            : 0;
    if (!d.write_active && d.write_front < writable) {
      double bytes = static_cast<double>(d.chunks[d.write_front].size());
      if (d.write_front == 0 && codec_) {
        bytes += static_cast<double>(
            compress::ChunkedCodec::header_bytes(d.chunk_count));
      }
      d.write_remaining = bytes / cfg_.io_bw;
      d.write_active = true;
      d.write_start_v = vclock_;
    }
    if (!d.compress_active && !d.write_active) {
      // Every chunk compressed and written: the pipeline is dry.
      d.compressed = codec_ ? codec_->assemble(d.image_size, d.chunks)
                            : std::move(d.chunks[0]);
      d.assembled = true;
      break;
    }
    // Advance both active stages together to the nearest completion (or
    // the budget's edge).
    double step = budget;
    if (d.compress_active) step = std::min(step, d.compress_remaining);
    if (d.write_active) step = std::min(step, d.write_remaining);
    vclock_ += step;
    obs::TraceBuffer* rb = trace_->root();
    if (d.compress_active) {
      d.compress_remaining -= step;
      if (d.compress_remaining <= 0.0) {
        d.compress_active = false;
        if (rb) {
          rb->span_at(d.compress_start_v, vclock_, "compress_chunk",
                      "ndp.compress", cfg_.trace_track + 1,
                      {obs::u64("chunk", d.compressed_done),
                       obs::u64("out_bytes",
                                d.chunks[d.compressed_done].size())});
        }
        ++d.compressed_done;
      }
    }
    if (d.write_active) {
      d.write_remaining -= step;
      if (d.write_remaining <= 0.0) {
        d.write_active = false;
        if (rb) {
          rb->span_at(d.write_start_v, vclock_, "write_chunk", "ndp.wire",
                      cfg_.trace_track + 2,
                      {obs::u64("chunk", d.write_front),
                       obs::u64("bytes", d.chunks[d.write_front].size())});
        }
        ++d.write_front;
      }
    }
    budget -= step;
    used += step;
  }
  return used;
}

void NdpAgent::finish_drain() {
  auto& d = *drain_;
  const std::uint64_t id = d.checkpoint_id;
  // Stage the compressed image in the compressed partition (section 4.3's
  // second circular buffer) - best effort: a full partition only costs the
  // fast-restore staging. Done once, before the IO write can fail. Delta
  // frames are not staged: they are useless without their chain, and the
  // partition exists for fast self-contained restores.
  if (d.put_attempts == 0 && codec_ && !compressed_.contains(id) &&
      !d.is_delta) {
    compressed_.put(id, d.compressed);
  }
  ++d.put_attempts;
  ++stats_.io_put_attempts;
  obs::TraceBuffer* rb = trace_->root();
  // One attempt of the shared write-verify-quarantine primitive - the
  // same stage the host commit path's writer jobs run (docs/PERF.md), so
  // a drained checkpoint hits the IO device with the identical op
  // sequence a host-side commit would.
  const ckpt::PutOutcome out = ckpt::verified_put_once(
      io_, cfg_.rank, id, d.compressed, /*verify=*/true);
  const bool ok = out.ok;
  const bool permanent = out.put_permanent || out.read_error_permanent;
  if (out.verify_failed) {
    ++stats_.io_verify_failures;
    if (out.quarantined) {
      ++stats_.io_quarantined;
      if (rb) {
        rb->instant_at(vclock_, "io_quarantine", "ndp", cfg_.trace_track,
                       {obs::u64("id", id)});
      }
    } else if (rb) {
      rb->instant_at(vclock_, "io_verify_fail", "ndp", cfg_.trace_track,
                     {obs::u64("id", id)});
    }
  }

  if (ok) {
    stats_.bytes_to_io += d.compressed.size();
    newest_on_io_ = id;
    ++stats_.drains_completed;
    if (delta_codec_) {
      // This image is now the chain's reference (captured before the
      // unlock below; the entry is still resident).
      if (const auto image = uncompressed_.get(id)) {
        last_shipped_ = Shipped{id, Bytes(image->begin(), image->end())};
      } else {
        last_shipped_.reset();
      }
      links_since_full_ = d.is_delta ? links_since_full_ + 1 : 0;
    }
    if (io_degraded_) {
      // The IO path works again: the drain "level" heals, exactly like a
      // multilevel level's probe succeeding.
      io_degraded_ = false;
      ++stats_.io_repairs;
      if (rb) {
        rb->instant_at(vclock_, "io_healed", "ndp", cfg_.trace_track,
                       {obs::u64("id", id)});
      }
    }
    if (rb) {
      rb->span_at(d.start_v, vclock_, "drain", "ndp", cfg_.trace_track,
                  {obs::u64("id", id), obs::u64("chunks", d.chunk_count),
                   obs::u64("in_bytes", d.image_size),
                   obs::u64("out_bytes", d.compressed.size())});
    }
    if (d.locked) uncompressed_.unlock(id);
    drain_.reset();
    start_drain_if_ready();
    return;
  }
  if (!permanent && d.put_attempts < cfg_.drain_put_attempts) {
    // Transient failure: back off (virtual time - the pump re-drives the
    // retry once it has elapsed) and keep the drain alive.
    ++stats_.drain_put_retries;
    const double backoff =
        cfg_.drain_retry_backoff *
        std::pow(2.0, static_cast<double>(d.put_attempts - 1));
    stats_.retry_backoff_seconds += backoff;
    d.remaining_seconds = backoff;
    if (rb) {
      rb->instant_at(vclock_, "io_put_retry", "ndp", cfg_.trace_track,
                     {obs::u64("id", id),
                      obs::u64("attempt", d.put_attempts),
                      obs::f64("backoff_s", backoff)});
    }
    return;
  }
  // Permanent outage or retries exhausted: hand the compressed image back
  // to the host write path and move on to the next checkpoint. The delta
  // chain cannot continue over a frame IO never saw: restart at a full.
  ++stats_.drain_put_failures;
  ++stats_.host_fallbacks;
  io_degraded_ = true;
  last_shipped_.reset();
  links_since_full_ = 0;
  if (rb) {
    rb->span_at(d.start_v, vclock_, "drain_failed", "ndp", cfg_.trace_track,
                {obs::u64("id", id),
                 obs::u64("attempts", d.put_attempts)});
    rb->instant_at(vclock_, "host_fallback", "ndp", cfg_.trace_track,
                   {obs::u64("id", id),
                    obs::u64("bytes", d.compressed.size())});
  }
  fallback_ = HostFallback{id, std::move(d.compressed)};
  if (d.locked) uncompressed_.unlock(id);
  drain_.reset();
  start_drain_if_ready();
}

double NdpAgent::pump(double seconds) {
  double consumed = 0.0;
  while (drain_) {
    if (!drain_->assembled) {
      if (seconds <= 0.0) break;
      const double used = step_pipeline(seconds);
      seconds -= used;
      consumed += used;
      if (!drain_->assembled) break;  // budget ran out mid-pipeline
      if (drain_->remaining_seconds <= 0.0) {
        // The last chunk landed exactly now: issue the IO put (retries,
        // if any, consume further virtual time below).
        finish_drain();
      }
    } else {
      if (seconds <= 0.0) break;
      const double step = std::min(seconds, drain_->remaining_seconds);
      drain_->remaining_seconds -= step;
      seconds -= step;
      consumed += step;
      vclock_ += step;
      if (drain_->remaining_seconds <= 0.0) finish_drain();
    }
  }
  stats_.busy_seconds += consumed;
  return consumed;
}

void NdpAgent::reset() {
  obs::TraceBuffer* rb = trace_->root();
  if (drain_) {
    ++stats_.drains_aborted;
    if (rb) {
      rb->span_at(drain_->start_v, vclock_, "drain_aborted", "ndp",
                  cfg_.trace_track,
                  {obs::u64("id", drain_->checkpoint_id)});
    }
    drain_.reset();  // locks die with the store contents
  }
  if (rb) rb->instant_at(vclock_, "agent_reset", "ndp", cfg_.trace_track);
  pending_.reset();
  fallback_.reset();
  uncompressed_.clear();
  compressed_.clear();
  // Node loss drops the delta reference with the NVM: the next drain
  // ships a full frame.
  last_shipped_.reset();
  links_since_full_ = 0;
}

std::optional<NdpAgent::HostFallback> NdpAgent::take_host_fallback() {
  return std::exchange(fallback_, std::nullopt);
}

void NdpAgent::sync_clock(double now_seconds) {
  vclock_ = std::max(vclock_, now_seconds);
}

ckpt::LevelHealth NdpAgent::drain_health() const {
  ckpt::LevelHealth health;
  health.state = io_degraded_ ? ckpt::LevelState::kDegraded
                              : ckpt::LevelState::kHealthy;
  health.puts = stats_.io_put_attempts;
  health.put_retries = stats_.drain_put_retries;
  health.put_failures = stats_.drain_put_failures;
  health.verify_failures = stats_.io_verify_failures;
  health.quarantined = stats_.io_quarantined;
  health.repairs = stats_.io_repairs;
  health.backoff_seconds = stats_.retry_backoff_seconds;
  return health;
}

std::optional<std::uint64_t> NdpAgent::newest_on_io() const {
  return newest_on_io_;
}

std::optional<Bytes> NdpAgent::restore_local(
    std::uint64_t checkpoint_id) const {
  if (const auto raw = uncompressed_.get(checkpoint_id)) {
    return Bytes(raw->begin(), raw->end());
  }
  if (codec_) {
    if (const auto packed = compressed_.get(checkpoint_id)) {
      try {
        Bytes raw = codec_->decompress(*packed);
        if (cfg_.delta_chain == 0) return raw;
        // Delta mode stages full frames only: unwrap to the image.
        auto frame = parse_frame(ByteSpan(raw));
        if (frame && frame->kind == ckpt::PayloadKind::kFull) {
          return std::move(frame->payload);
        }
        return std::nullopt;
      } catch (const compress::CodecError&) {
        return std::nullopt;  // corrupt staging copy: caller falls to IO
      }
    }
  }
  return std::nullopt;
}

}  // namespace ndpcr::ndp
