#include "ndp/agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ndpcr::ndp {

NdpAgent::NdpAgent(const AgentConfig& config, ckpt::KvStore& io_store)
    : cfg_(config),
      io_(io_store),
      uncompressed_(config.uncompressed_capacity),
      compressed_(config.compressed_capacity) {
  if (cfg_.compress_bw <= 0 || cfg_.io_bw <= 0) {
    throw std::invalid_argument("agent bandwidths must be positive");
  }
  if (cfg_.codec != compress::CodecId::kNull) {
    codec_ = compress::make_codec(cfg_.codec, cfg_.codec_level);
  }
}

bool NdpAgent::host_commit(std::uint64_t checkpoint_id, Bytes image) {
  if (!uncompressed_.put(checkpoint_id, std::move(image))) {
    return false;
  }
  ++stats_.commits_seen;
  if (pending_) {
    // The previously queued checkpoint is superseded before its drain
    // ever started: the NDP always ships the newest.
    ++stats_.drains_skipped;
  }
  pending_ = checkpoint_id;
  start_drain_if_ready();
  return true;
}

void NdpAgent::start_drain_if_ready() {
  if (drain_ || !pending_) return;
  const auto id = *pending_;
  pending_.reset();
  const auto image = uncompressed_.get(id);
  if (!image) return;  // evicted before we got to it

  Drain drain;
  drain.checkpoint_id = id;
  // Lock the source so the circular buffer cannot reclaim it while the
  // compressor reads it (section 4.2.2).
  uncompressed_.lock(id);
  drain.locked = true;

  double out_bytes = 0.0;
  if (codec_) {
    drain.compressed = codec_->compress(*image);
    stats_.bytes_compressed += image->size();
    out_bytes = static_cast<double>(drain.compressed.size());
    const double compress_time =
        static_cast<double>(image->size()) / cfg_.compress_bw;
    const double write_time = out_bytes / cfg_.io_bw;
    drain.remaining_seconds = cfg_.overlap
                                  ? std::max(compress_time, write_time)
                                  : compress_time + write_time;
  } else {
    drain.compressed.assign(image->begin(), image->end());
    out_bytes = static_cast<double>(drain.compressed.size());
    drain.remaining_seconds = out_bytes / cfg_.io_bw;
  }
  drain_ = std::move(drain);
}

void NdpAgent::finish_drain() {
  auto& d = *drain_;
  const std::uint64_t id = d.checkpoint_id;
  // Stage the compressed image in the compressed partition (section 4.3's
  // second circular buffer) - best effort: a full partition only costs the
  // fast-restore staging. Done once, before the IO write can fail.
  if (d.put_attempts == 0 && codec_ && !compressed_.contains(id)) {
    compressed_.put(id, d.compressed);
  }
  ++d.put_attempts;
  const auto status = io_.put(cfg_.rank, id, Bytes(d.compressed));
  bool ok = false;
  bool permanent = false;
  if (status.ok()) {
    // Verify the write actually landed intact (torn writes report
    // success); quarantine anything that reads back wrong.
    const auto readback = io_.get(cfg_.rank, id);
    if (readback.ok() && *readback == d.compressed) {
      ok = true;
    } else if (readback.ok()) {
      io_.erase(cfg_.rank, id);
    } else {
      permanent = readback.error().permanent();
    }
  } else {
    permanent = status.error().permanent();
  }

  if (ok) {
    stats_.bytes_to_io += d.compressed.size();
    newest_on_io_ = id;
    ++stats_.drains_completed;
    if (d.locked) uncompressed_.unlock(id);
    drain_.reset();
    start_drain_if_ready();
    return;
  }
  if (!permanent && d.put_attempts < cfg_.drain_put_attempts) {
    // Transient failure: back off (virtual time - the pump re-drives the
    // retry once it has elapsed) and keep the drain alive.
    ++stats_.drain_put_retries;
    const double backoff =
        cfg_.drain_retry_backoff *
        std::pow(2.0, static_cast<double>(d.put_attempts - 1));
    stats_.retry_backoff_seconds += backoff;
    d.remaining_seconds = backoff;
    return;
  }
  // Permanent outage or retries exhausted: hand the compressed image back
  // to the host write path and move on to the next checkpoint.
  ++stats_.drain_put_failures;
  fallback_ = HostFallback{id, std::move(d.compressed)};
  if (d.locked) uncompressed_.unlock(id);
  drain_.reset();
  start_drain_if_ready();
}

double NdpAgent::pump(double seconds) {
  double consumed = 0.0;
  while (seconds > 0.0 && drain_) {
    const double step = std::min(seconds, drain_->remaining_seconds);
    drain_->remaining_seconds -= step;
    seconds -= step;
    consumed += step;
    if (drain_->remaining_seconds <= 0.0) {
      finish_drain();
    }
  }
  stats_.busy_seconds += consumed;
  return consumed;
}

void NdpAgent::reset() {
  if (drain_) {
    ++stats_.drains_aborted;
    drain_.reset();  // locks die with the store contents
  }
  pending_.reset();
  fallback_.reset();
  uncompressed_.clear();
  compressed_.clear();
}

std::optional<NdpAgent::HostFallback> NdpAgent::take_host_fallback() {
  return std::exchange(fallback_, std::nullopt);
}

std::optional<std::uint64_t> NdpAgent::newest_on_io() const {
  return newest_on_io_;
}

std::optional<Bytes> NdpAgent::restore_local(
    std::uint64_t checkpoint_id) const {
  if (const auto raw = uncompressed_.get(checkpoint_id)) {
    return Bytes(raw->begin(), raw->end());
  }
  if (codec_) {
    if (const auto packed = compressed_.get(checkpoint_id)) {
      try {
        return codec_->decompress(*packed);
      } catch (const compress::CodecError&) {
        return std::nullopt;  // corrupt staging copy: caller falls to IO
      }
    }
  }
  return std::nullopt;
}

}  // namespace ndpcr::ndp
