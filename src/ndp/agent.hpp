#pragma once

// Functional model of the NDP device of sections 4.2-4.3: it owns the
// node-local NVM (two circular-buffer partitions: uncompressed and
// compressed checkpoints), compresses checkpoints with a real codec, and
// streams them to a global-IO store - all in virtual time, off the host's
// critical path.
//
// The host calls host_commit() when a local checkpoint lands in NVM (the
// notification of section 4.2.2); pump(seconds) advances the background
// pipeline. The agent:
//   * locks the checkpoint it is draining (so the circular buffer cannot
//     evict it under the compressor),
//   * always drains the newest committed checkpoint, skipping
//     intermediates it cannot keep up with,
//   * overlaps compression with the IO write in block-sized chunks
//     (virtual time is charged as the pipelined max),
//   * pauses while the host owns the NVM (the host_write_pause() window
//     of section 4.2.1) and during recovery (section 4.2.3),
//   * retries failed IO writes with virtual exponential backoff and, when
//     the store is permanently down, hands the compressed image back to
//     the host write path (take_host_fallback()),
//   * on node loss (reset()) drops all NVM contents and transfer state.
//
// Real bytes move through the real codec; only *durations* are modeled,
// using the configured compression and IO bandwidths. This is the bridge
// between the statistical timeline model (sim/) and the byte-level
// checkpoint library (ckpt/).

#include <cstdint>
#include <memory>
#include <optional>

#include "ckpt/nvm_store.hpp"
#include "ckpt/stores.hpp"
#include "compress/codec.hpp"

namespace ndpcr::ndp {

struct AgentConfig {
  std::size_t uncompressed_capacity = 64ull << 20;
  std::size_t compressed_capacity = 16ull << 20;
  // Codec for the IO stream; kNull disables compression (the drain then
  // bypasses the compressed partition and streams the raw image).
  compress::CodecId codec = compress::CodecId::kDeflateStyle;
  int codec_level = 1;
  double compress_bw = 440.4e6;  // uncompressed bytes/s through the codec
  double io_bw = 100e6;          // bytes/s onto the IO store
  bool overlap = true;           // section 4.2.2 pipelining
  std::uint32_t rank = 0;        // key for the IO store
  // IO-store write failures: total put attempts per drain before the
  // agent gives up and hands the bytes back to the host path, and the
  // virtual backoff before the first retry (doubles per retry).
  std::uint32_t drain_put_attempts = 4;
  double drain_retry_backoff = 0.05;
};

struct AgentStats {
  std::uint64_t commits_seen = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t drains_skipped = 0;  // superseded by a newer checkpoint
  std::uint64_t drains_aborted = 0;  // reset() during a drain
  double busy_seconds = 0.0;         // pipeline time actually consumed
  std::uint64_t bytes_compressed = 0;
  std::uint64_t bytes_to_io = 0;
  std::uint64_t drain_put_retries = 0;   // IO writes retried after failure
  std::uint64_t drain_put_failures = 0;  // drains handed back to the host
  double retry_backoff_seconds = 0.0;    // virtual backoff accumulated
};

class NdpAgent {
 public:
  // The IO store outlives the agent (it models the parallel file system).
  NdpAgent(const AgentConfig& config, ckpt::KvStore& io_store);

  // Host-side local commit: the checkpoint image enters the uncompressed
  // partition. Returns false if the partition cannot take it (everything
  // evictable is pinned by an in-flight drain) - the host must stall, the
  // back-pressure case discussed in section 4.2.1.
  bool host_commit(std::uint64_t checkpoint_id, Bytes image);

  // Advance the background pipeline by `seconds` of virtual time. Returns
  // the seconds actually consumed (less than `seconds` when the pipeline
  // goes idle).
  double pump(double seconds);

  // Node loss: NVM partitions and transfer state are gone. The IO store
  // is unaffected.
  void reset();

  // Newest checkpoint id fully landed on the IO store for this rank.
  [[nodiscard]] std::optional<std::uint64_t> newest_on_io() const;

  // Restore path: newest checkpoint available locally (uncompressed
  // partition first, then the compressed partition through the codec).
  [[nodiscard]] std::optional<Bytes> restore_local(
      std::uint64_t checkpoint_id) const;

  // A drain whose IO writes failed permanently (or exhausted their
  // retries): the compressed image the host should write through its own
  // path. The host collects it with take_host_fallback(); a newer
  // fallback replaces an uncollected older one.
  struct HostFallback {
    std::uint64_t checkpoint_id = 0;
    Bytes compressed;
  };
  [[nodiscard]] std::optional<HostFallback> take_host_fallback();

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] const ckpt::NvmStore& uncompressed_partition() const {
    return uncompressed_;
  }
  [[nodiscard]] const ckpt::NvmStore& compressed_partition() const {
    return compressed_;
  }
  [[nodiscard]] bool busy() const { return drain_.has_value(); }

 private:
  struct Drain {
    std::uint64_t checkpoint_id = 0;
    Bytes compressed;          // produced up front; time charged as it flows
    double remaining_seconds = 0.0;
    bool locked = false;
    std::uint32_t put_attempts = 0;  // IO writes tried for this drain
  };

  void start_drain_if_ready();
  void finish_drain();

  AgentConfig cfg_;
  ckpt::KvStore& io_;
  std::unique_ptr<compress::Codec> codec_;  // null when kNull
  ckpt::NvmStore uncompressed_;
  ckpt::NvmStore compressed_;
  std::optional<Drain> drain_;
  std::optional<std::uint64_t> pending_;  // newest committed, not drained
  std::optional<std::uint64_t> newest_on_io_;
  std::optional<HostFallback> fallback_;
  AgentStats stats_;
};

}  // namespace ndpcr::ndp
