#pragma once

// Functional model of the NDP device of sections 4.2-4.3: it owns the
// node-local NVM (two circular-buffer partitions: uncompressed and
// compressed checkpoints), compresses checkpoints with a real codec, and
// streams them to a global-IO store - all in virtual time, off the host's
// critical path.
//
// The host calls host_commit() when a local checkpoint lands in NVM (the
// notification of section 4.2.2); pump(seconds) advances the background
// pipeline. The agent:
//   * locks the checkpoint it is draining (so the circular buffer cannot
//     evict it under the compressor),
//   * always drains the newest committed checkpoint, skipping
//     intermediates it cannot keep up with,
//   * runs a true two-stage chunk pipeline: the image is compressed
//     chunk-at-a-time (lazily, as each compress stage begins) while the
//     previously compressed chunk is on the IO wire, so virtual time
//     follows the per-chunk recurrence C_j = C_{j-1} + c_j,
//     W_j = max(C_j, W_{j-1}) + w_j instead of a single max(C, W)
//     (overlap = false serializes the stages: total = sum c + sum w),
//   * ships the IO copy as a ChunkedCodec container (the same
//     thread-count-invariant format the multilevel IO path uses),
//   * pauses while the host owns the NVM (the host_write_pause() window
//     of section 4.2.1) and during recovery (section 4.2.3),
//   * retries failed IO writes with virtual exponential backoff and, when
//     the store is permanently down, hands the compressed image back to
//     the host write path (take_host_fallback()),
//   * on node loss (reset()) drops all NVM contents and transfer state.
//
// Real bytes move through the real codec; only *durations* are modeled,
// using the configured compression and IO bandwidths. This is the bridge
// between the statistical timeline model (sim/) and the byte-level
// checkpoint library (ckpt/).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/multilevel.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/stores.hpp"
#include "compress/chunked.hpp"
#include "compress/codec.hpp"
#include "delta/delta.hpp"

namespace ndpcr::obs {
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::ndp {

struct AgentConfig {
  std::size_t uncompressed_capacity = 64ull << 20;
  std::size_t compressed_capacity = 16ull << 20;
  // Codec for the IO stream; kNull disables compression (the drain then
  // bypasses the compressed partition and streams the raw image).
  compress::CodecId codec = compress::CodecId::kDeflateStyle;
  int codec_level = 1;
  double compress_bw = 440.4e6;  // uncompressed bytes/s through the codec
  double io_bw = 100e6;          // bytes/s onto the IO store
  bool overlap = true;           // section 4.2.2 pipelining
  std::uint32_t rank = 0;        // key for the IO store
  // Drain pipeline granularity (section 4.2.2): input bytes per chunk.
  // The IO copy is a ChunkedCodec container, so the chunk size fixes the
  // stored bytes - it is a format knob, not just a timing knob.
  std::size_t chunk_bytes = 256ull << 10;
  // Worker threads for ChunkedCodec work outside the drain pipeline
  // (restore-path decompression); <= 1 runs inline.
  unsigned codec_threads = 1;
  // IO-store write failures: total put attempts per drain before the
  // agent gives up and hands the bytes back to the host path, and the
  // virtual backoff before the first retry (doubles per retry).
  std::uint32_t drain_put_attempts = 4;
  double drain_retry_backoff = 0.05;

  // Incremental drain mode (docs/DELTA.md): with delta_chain > 0 the
  // agent wraps every shipped image in a self-describing "NDFR" frame and
  // delta-encodes it against the last image it successfully shipped - the
  // paper's "compare data for consecutive checkpoints" NDP extension. Up
  // to delta_chain delta frames ride between full frames; fallbacks and
  // resets restart the chain at a full. The encode is a preprocess
  // pipeline stage charged at delta_bw (a hash-and-compare pass over the
  // image) before chunk compression begins, so the composed pipeline is
  // delta -> codec -> wire. 0 keeps the classic raw-container drain -
  // consumers of the IO store see byte-identical entries.
  std::uint32_t delta_chain = 0;
  std::size_t delta_block_bytes = 4096;
  double delta_bw = 2e9;  // bytes/s through the delta preprocess stage

  // Optional tracer (docs/OBSERVABILITY.md). The agent emits on the
  // virtual clock: a span per drain and per pipeline stage (compress vs
  // wire, so the overlap is visible in Perfetto), plus retry/fallback
  // instants. Three tracks are used starting at `trace_track`: +0 drain,
  // +1 compress stage, +2 wire stage. The agent's virtual clock advances
  // only while the pipeline consumes time; a simulator that knows the
  // global virtual time should call sync_clock() before each pump.
  obs::Tracer* trace = nullptr;
  std::uint32_t trace_track = 0;
};

struct AgentStats {
  std::uint64_t commits_seen = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t drains_skipped = 0;  // superseded by a newer checkpoint
  std::uint64_t drains_aborted = 0;  // reset() during a drain
  double busy_seconds = 0.0;         // pipeline time actually consumed
  std::uint64_t bytes_compressed = 0;
  std::uint64_t bytes_to_io = 0;
  std::uint64_t drain_put_retries = 0;   // IO writes retried after failure
  std::uint64_t drain_put_failures = 0;  // drains handed back to the host
  double retry_backoff_seconds = 0.0;    // virtual backoff accumulated
  // Health-style counters for the drain's IO write path, so chaos runs
  // can assert on fallback/retry behaviour the way they do on the
  // multilevel HealthReport (see drain_health()).
  std::uint64_t io_put_attempts = 0;     // IO puts issued (incl. retries)
  std::uint64_t io_verify_failures = 0;  // readback mismatched the drain
  std::uint64_t io_quarantined = 0;      // torn IO entries erased
  std::uint64_t host_fallbacks = 0;      // HostFallback handoffs staged
  std::uint64_t io_repairs = 0;          // degraded -> healthy transitions
  // Delta drain mode (delta_chain > 0): frames built by kind, raw bytes
  // fed to the delta encoder, and delta-stream bytes it produced.
  std::uint64_t full_frames = 0;
  std::uint64_t delta_frames = 0;
  std::uint64_t delta_input_bytes = 0;
  std::uint64_t delta_frame_bytes = 0;
};

class NdpAgent {
 public:
  // The IO store outlives the agent (it models the parallel file system).
  NdpAgent(const AgentConfig& config, ckpt::KvStore& io_store);

  // Host-side local commit: the checkpoint image enters the uncompressed
  // partition. Returns false if the partition cannot take it (everything
  // evictable is pinned by an in-flight drain) - the host must stall, the
  // back-pressure case discussed in section 4.2.1.
  bool host_commit(std::uint64_t checkpoint_id, Bytes image);

  // Advance the background pipeline by `seconds` of virtual time. Returns
  // the seconds actually consumed (less than `seconds` when the pipeline
  // goes idle).
  double pump(double seconds);

  // Node loss: NVM partitions and transfer state are gone. The IO store
  // is unaffected.
  void reset();

  // Newest checkpoint id fully landed on the IO store for this rank.
  [[nodiscard]] std::optional<std::uint64_t> newest_on_io() const;

  // Restore path: newest checkpoint available locally (uncompressed
  // partition first, then the compressed partition through the codec).
  [[nodiscard]] std::optional<Bytes> restore_local(
      std::uint64_t checkpoint_id) const;

  // A drain whose IO writes failed permanently (or exhausted their
  // retries): the compressed image the host should write through its own
  // path. The host collects it with take_host_fallback(); a newer
  // fallback replaces an uncollected older one.
  struct HostFallback {
    std::uint64_t checkpoint_id = 0;
    Bytes compressed;
  };
  [[nodiscard]] std::optional<HostFallback> take_host_fallback();

  // Delta drain wire frame (delta_chain > 0): what a decompressed IO
  // entry holds. A kFull frame's payload is the raw image; a kDelta
  // frame's payload is a delta stream against the payload of the frame
  // shipped as `base_id`. Static so IO-side consumers can decode without
  // an agent instance.
  struct Frame {
    ckpt::PayloadKind kind = ckpt::PayloadKind::kFull;
    std::uint64_t base_id = 0;
    Bytes payload;
  };
  static Bytes build_frame(ckpt::PayloadKind kind, std::uint64_t base_id,
                           ByteSpan payload);
  // Nullopt on bad magic or truncation.
  static std::optional<Frame> parse_frame(ByteSpan raw);

  // Align the agent's virtual clock with the caller's simulation time
  // (monotone: never moves backwards). Only affects trace timestamps.
  void sync_clock(double now_seconds);

  // The drain's IO write path viewed as a ckpt::LevelHealth, so chaos
  // harnesses can fold it into the same reporting as the multilevel
  // levels: degraded while the last drain fell back to the host.
  [[nodiscard]] ckpt::LevelHealth drain_health() const;

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] const ckpt::NvmStore& uncompressed_partition() const {
    return uncompressed_;
  }
  [[nodiscard]] const ckpt::NvmStore& compressed_partition() const {
    return compressed_;
  }
  [[nodiscard]] bool busy() const { return drain_.has_value(); }

 private:
  struct Drain {
    std::uint64_t checkpoint_id = 0;
    // Bytes entering the chunk pipeline: the raw image size classically,
    // the frame size in delta mode.
    std::size_t image_size = 0;
    std::size_t raw_bytes = 0;  // the image's true size (trace/stats)
    // Delta mode: the pipeline compresses this frame instead of reading
    // the NVM span, after a preprocess stage models the encode cost.
    Bytes frame;
    bool framed = false;
    bool is_delta = false;
    double preprocess_remaining = 0.0;
    double preprocess_start_v = 0.0;
    // Two-stage chunk pipeline. chunks[j] is produced lazily when chunk
    // j's compress stage begins (the source NVM entry is locked for the
    // whole drain, so the span stays valid).
    std::size_t chunk_count = 0;
    std::vector<Bytes> chunks;
    std::size_t compressed_done = 0;  // chunks out of the compress stage
    std::size_t write_front = 0;      // chunks off the IO wire
    double compress_remaining = 0.0;
    double write_remaining = 0.0;
    bool compress_active = false;
    bool write_active = false;
    bool assembled = false;  // pipeline drained; `compressed` is final
    Bytes compressed;        // the container the IO store receives
    double remaining_seconds = 0.0;  // put retry backoff countdown
    bool locked = false;
    std::uint32_t put_attempts = 0;  // IO writes tried for this drain
    // Virtual-clock stamps for the trace spans.
    double start_v = 0.0;
    double compress_start_v = 0.0;
    double write_start_v = 0.0;
  };

  void start_drain_if_ready();
  // Advance the chunk pipeline by up to `budget` seconds; returns the
  // time consumed. Sets drain_->assembled when the last write lands.
  double step_pipeline(double budget);
  void finish_drain();

  AgentConfig cfg_;
  ckpt::KvStore& io_;
  // Chunked container codec; empty when cfg_.codec == kNull.
  std::optional<compress::ChunkedCodec> codec_;
  ckpt::NvmStore uncompressed_;
  ckpt::NvmStore compressed_;
  std::optional<Drain> drain_;
  std::optional<std::uint64_t> pending_;  // newest committed, not drained
  std::optional<std::uint64_t> newest_on_io_;
  std::optional<HostFallback> fallback_;
  // Delta drain chain state (cfg_.delta_chain > 0): the last image that
  // fully landed on IO (the next delta's reference), and the delta frames
  // shipped since the last full. A fallback or reset clears both, so the
  // chain restarts at a full frame.
  std::optional<delta::DeltaCodec> delta_codec_;
  delta::DeltaScratch delta_scratch_;
  struct Shipped {
    std::uint64_t id = 0;
    Bytes image;
  };
  std::optional<Shipped> last_shipped_;
  std::uint32_t links_since_full_ = 0;
  AgentStats stats_;
  // Never null: cfg.trace or the shared disabled Tracer::null().
  obs::Tracer* trace_;
  double vclock_ = 0.0;       // virtual time consumed by this agent
  bool io_degraded_ = false;  // last drain fell back to the host path
};

}  // namespace ndpcr::ndp
