#pragma once

// Daly's analytic checkpoint/restart model.
//
// Implements the two cited models the paper builds on:
//  * J. T. Daly, "A higher order estimate of the optimum checkpoint interval
//    for restart dumps", FGCS 22 (2006): expected wall-clock time of an
//    application under exponentially distributed interrupts, and the
//    closed-form higher-order estimate of the optimal checkpoint interval.
//  * J. T. Daly, "Quantifying checkpoint efficiency" (2007): efficiency
//    (progress rate) as a function of MTTI and checkpoint commit time.
//
// Conventions: all times in seconds. `tau` is the useful-compute interval
// between checkpoints (checkpoint cost excluded), `delta` the checkpoint
// commit time, `restart` the time to read a checkpoint back, and `mtti` the
// system mean time to interrupt (M).

namespace ndpcr::analytic {

struct CrParams {
  double mtti = 0.0;     // M: mean time to interrupt (s)
  double commit = 0.0;   // delta: checkpoint commit time (s)
  double restart = 0.0;  // R: restart (checkpoint read) time (s)
};

// Expected total wall-clock time to complete `solve_time` seconds of useful
// work, checkpointing every `tau` seconds of useful work (Daly 2006, eq. 20):
//
//   T = M * e^{R/M} * (e^{(tau+delta)/M} - 1) * solve_time / tau
//
// Valid for tau > 0. Includes checkpoint, rework, and restart overheads.
double expected_runtime(double solve_time, double tau, const CrParams& p);

// Progress rate (efficiency): solve_time / expected_runtime, independent of
// solve_time.
double efficiency(double tau, const CrParams& p);

// First-order optimum: tau ~= sqrt(2 delta M) - delta (classic Young/Daly).
double first_order_optimal_interval(double commit, double mtti);

// Daly's higher-order estimate (2006):
//   tau = sqrt(2 delta M) [1 + 1/3 sqrt(delta/(2M)) + 1/9 (delta/(2M))] - delta
// for delta < 2M, and tau = M otherwise.
double daly_optimal_interval(double commit, double mtti);

// Numerically minimize expected_runtime over tau (golden-section search).
// Used to validate the closed form and by the multilevel optimizer.
double numeric_optimal_interval(const CrParams& p);

// Efficiency at Daly's optimal interval.
double optimal_efficiency(const CrParams& p);

// The Figure-1 curve: efficiency at the optimal interval as a function of
// the ratio M/delta, with restart time equal to commit time (the paper's
// assumption, footnote 2).
double efficiency_vs_m_over_delta(double m_over_delta);

// Inverse problem: the largest commit time delta (with restart == delta)
// achieving at least `target` efficiency at a given MTTI. Solved by
// bisection on efficiency_vs_m_over_delta, which is monotone. The paper
// derives delta ~= M/200 for a 90% target (section 3.3).
double required_commit_time(double mtti, double target_efficiency);

}  // namespace ndpcr::analytic
