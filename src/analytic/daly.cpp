#include "analytic/daly.hpp"

#include <cmath>
#include <stdexcept>

namespace ndpcr::analytic {

double expected_runtime(double solve_time, double tau, const CrParams& p) {
  if (tau <= 0.0) throw std::invalid_argument("tau must be positive");
  if (p.mtti <= 0.0) throw std::invalid_argument("mtti must be positive");
  const double m = p.mtti;
  return m * std::exp(p.restart / m) *
         (std::exp((tau + p.commit) / m) - 1.0) * solve_time / tau;
}

double efficiency(double tau, const CrParams& p) {
  return 1.0 / expected_runtime(1.0, tau, p);
}

double first_order_optimal_interval(double commit, double mtti) {
  return std::sqrt(2.0 * commit * mtti) - commit;
}

double daly_optimal_interval(double commit, double mtti) {
  if (commit <= 0.0) throw std::invalid_argument("commit must be positive");
  if (mtti <= 0.0) throw std::invalid_argument("mtti must be positive");
  if (commit >= 2.0 * mtti) return mtti;
  const double x = commit / (2.0 * mtti);
  return std::sqrt(2.0 * commit * mtti) *
             (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
         commit;
}

double numeric_optimal_interval(const CrParams& p) {
  // Golden-section search on [lo, hi]. Expected runtime in tau is unimodal:
  // checkpoint overhead dominates for small tau, rework for large tau.
  const double phi = 0.6180339887498949;
  double lo = 1e-9 * p.mtti;
  double hi = 10.0 * p.mtti;
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  double fa = expected_runtime(1.0, a, p);
  double fb = expected_runtime(1.0, b, p);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-10 * p.mtti; ++iter) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = expected_runtime(1.0, a, p);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = expected_runtime(1.0, b, p);
    }
  }
  return 0.5 * (lo + hi);
}

double optimal_efficiency(const CrParams& p) {
  return efficiency(daly_optimal_interval(p.commit, p.mtti), p);
}

double efficiency_vs_m_over_delta(double m_over_delta) {
  if (m_over_delta <= 0.0) {
    throw std::invalid_argument("M/delta must be positive");
  }
  const CrParams p{.mtti = m_over_delta, .commit = 1.0, .restart = 1.0};
  return optimal_efficiency(p);
}

double required_commit_time(double mtti, double target_efficiency) {
  if (target_efficiency <= 0.0 || target_efficiency >= 1.0) {
    throw std::invalid_argument("target efficiency must be in (0, 1)");
  }
  // efficiency_vs_m_over_delta is increasing in M/delta; bisect on the
  // ratio, then convert back to delta.
  double lo = 1.0;      // ratio where efficiency is poor
  double hi = 1e12;     // effectively perfect
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // bisect in log space
    if (efficiency_vs_m_over_delta(mid) < target_efficiency) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return mtti / hi;
}

}  // namespace ndpcr::analytic
