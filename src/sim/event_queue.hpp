#pragma once

// CalendarQueue: an O(1)-amortized event scheduler for discrete-event
// simulation (Brown 1988), replacing the binary-heap priority queue whose
// O(log N) cache-missing sift dominated the failure simulator at 100k+
// nodes (docs/SIM.md).
//
// Events are (time, id, seq) triples and pop order follows the
// deterministic total order
//
//     time, then id, then seq
//
// - the tie-break contract every engine built on this queue relies on
// (the property suite pins pop order, ties included, against a reference
// std::priority_queue with the same comparator).
//
// Mechanics: the time axis is divided into fixed-width windows; window k
// maps to bucket k & (nbuckets-1), so each bucket holds every window
// congruent mod nbuckets (one "year" = nbuckets windows). Buckets are
// deliberately small (a handful of events) and UNSORTED: enqueue is a
// plain append - no ordered insert, no per-push memmove - and dequeue
// scans the cursor bucket for its minimum under the total order (a
// couple of contiguous cache lines). If the bucket minimum belongs to
// the current window it is swap-removed; otherwise the cursor advances.
// A full fruitless lap falls back to a direct min search that jumps the
// cursor (sparse-queue case). An event landing behind the cursor
// rewinds it. Pop order is identical to the sorted variant: the bucket
// minimum under (time, id, seq) is unique, however the bucket is stored.
//
// Window membership is decided by widx(time) - the same monotone
// float->window mapping on both enqueue and dequeue - never by comparing
// times against accumulated window edges, so boundary rounding cannot
// misfile or skip an event.
//
// The queue self-tunes: it tracks the mean inter-dequeue gap (EMA) and
// rebuilds with a matched width/bucket count when size doubles/halves or
// the width has drifted far from the observed gap. Callers that know
// their event density (the failure DES knows the mean failure gap is
// mttf/N) pass it as width_hint to skip the warm-up drift.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ndpcr::sim {

struct SimEvent {
  double time = 0.0;
  std::uint32_t id = 0;   // node / actor id: the first tie-break
  std::uint32_t seq = 0;  // scheduling generation: the final tie-break
};

// The deterministic total order: time, then id, then seq.
[[nodiscard]] inline bool event_less(const SimEvent& a, const SimEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.id != b.id) return a.id < b.id;
  return a.seq < b.seq;
}

class CalendarQueue {
 public:
  // `expected` sizes the initial bucket array (0 = small); `width_hint`
  // is the expected gap between consecutive dequeues (0 = self-tune).
  explicit CalendarQueue(std::size_t expected = 0, double width_hint = 0.0);

  // Times must be finite and >= 0.
  void push(const SimEvent& event);

  // Remove and return the minimum event by (time, id, seq). The queue
  // must not be empty.
  SimEvent pop();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // Introspection for tests/benchmarks.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] std::uint64_t direct_searches() const {
    return direct_searches_;
  }

 private:
  // Monotone time -> absolute window index. Far-future times past the
  // representable window range collapse into one terminal window (still
  // a single bucket, still ordered within it).
  [[nodiscard]] std::uint64_t widx(double time) const {
    const double q = time * inv_width_;
    return q < kMaxWindow ? static_cast<std::uint64_t>(q)
                          : static_cast<std::uint64_t>(kMaxWindow);
  }

  void rebuild(std::size_t nbuckets, double width);
  void maybe_retune();
  SimEvent pop_direct();  // global min search; jumps the cursor

  static constexpr double kMaxWindow = 9.0e18;  // < 2^63, exact in double

  std::vector<std::vector<SimEvent>> buckets_;  // unsorted, min by scan
  std::size_t mask_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::uint64_t cur_window_ = 0;  // absolute window the cursor is on
  std::size_t size_ = 0;
  double last_pop_time_ = 0.0;
  double gap_ema_ = 0.0;          // mean inter-dequeue gap estimate
  std::uint64_t pops_since_tune_ = 0;
  std::uint64_t direct_searches_ = 0;
};

}  // namespace ndpcr::sim
