#include "sim/timeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "exec/task_pool.hpp"
#include "ndp/ndp.hpp"

namespace ndpcr::sim {
namespace {

enum class Kind {
  kCompute,
  kCkptLocal,
  kCkptIo,
  kRestoreLocal,
  kRestoreIo,
};

constexpr double kNone = -1.0;

}  // namespace

TimelineSimulator::TimelineSimulator(const TimelineConfig& config,
                                     std::uint64_t seed)
    : cfg_(config), seed_(seed) {
  if (cfg_.mtti <= 0 || cfg_.local_interval <= 0 ||
      cfg_.checkpoint_bytes <= 0 || cfg_.total_work <= 0) {
    throw std::invalid_argument("timeline config values must be positive");
  }
  if (cfg_.strategy != Strategy::kIoOnly && cfg_.local_bw <= 0) {
    throw std::invalid_argument("local_bw must be positive");
  }
  if (cfg_.io_bw <= 0) {
    throw std::invalid_argument("io_bw must be positive");
  }
  if (cfg_.compression_factor < 0 || cfg_.compression_factor >= 1.0) {
    throw std::invalid_argument("compression factor must be in [0, 1)");
  }
  if (cfg_.failure_shape <= 0) {
    throw std::invalid_argument("failure shape must be positive");
  }
}

double TimelineSimulator::local_commit_time() const {
  // Local checkpoints are stored uncompressed (section 3.5: compression
  // cannot keep up with NVM bandwidth, so only the IO stream compresses).
  return cfg_.checkpoint_bytes / cfg_.local_bw;
}

double TimelineSimulator::local_restore_time() const {
  return cfg_.checkpoint_bytes / cfg_.local_bw;
}

double TimelineSimulator::host_io_commit_time() const {
  const double cf = cfg_.compression_factor;
  const double write = cfg_.checkpoint_bytes * (1.0 - cf) / cfg_.io_bw;
  if (cf <= 0.0) return cfg_.checkpoint_bytes / cfg_.io_bw;
  // Compression overlapped with the write (section 3.5): bounded by the
  // slower of the host compression pipeline and the IO link.
  return std::max(write, cfg_.checkpoint_bytes / cfg_.host_compress_bw);
}

double TimelineSimulator::io_restore_time() const {
  const double cf = cfg_.compression_factor;
  const double read = cfg_.checkpoint_bytes * (1.0 - cf) / cfg_.io_bw;
  if (cf <= 0.0) return cfg_.checkpoint_bytes / cfg_.io_bw;
  // Decompression pipelined on host cores (section 4.3): recovery takes
  // about as long as retrieving the compressed image, unless decompression
  // is the (unlikely) bottleneck.
  return std::max(read, cfg_.checkpoint_bytes / cfg_.host_decompress_bw);
}

double TimelineSimulator::ndp_drain_time() const {
  const double rate =
      cfg_.compression_factor > 0.0 ? cfg_.ndp_compress_bw : 0.0;
  return ndp::drain_time(cfg_.checkpoint_bytes, cfg_.compression_factor,
                         rate, cfg_.io_bw, cfg_.ndp_overlap);
}

struct TimelineSimulator::Impl {
  const TimelineConfig& cfg;
  const TimelineSimulator& self;
  Rng rng;
  TimelineResult result;

  double now = 0.0;           // wall clock
  double next_failure = 0.0;  // wall time of the next interrupt
  double position = 0.0;      // completed useful work (work seconds)
  double high_water = 0.0;    // furthest position ever reached
  bool rerun_is_io = false;   // attribution of work below high_water

  double local_ckpt_position = kNone;  // newest checkpoint in local NVM
  double io_ckpt_position = kNone;     // newest checkpoint landed on IO
  std::uint64_t ckpt_counter = 0;      // counts completed local commits

  // NDP pipeline: the drain in flight and the newest not-yet-drained
  // local checkpoint waiting behind it.
  double ndp_active_position = kNone;
  double ndp_remaining = 0.0;
  double ndp_queued_position = kNone;

  Impl(const TimelineConfig& c, const TimelineSimulator& s,
       std::uint64_t seed)
      : cfg(c), self(s), rng(seed) {
    next_failure = sample_interarrival();
  }

  double sample_interarrival() {
    if (cfg.failure_shape == 1.0) return rng.exponential(cfg.mtti);
    return rng.weibull_by_mean(cfg.failure_shape, cfg.mtti);
  }

  void account(Kind kind, double dt) {
    auto& b = result.breakdown;
    switch (kind) {
      case Kind::kCompute: {
        // Split the segment at the high-water mark: below it is rerun.
        const double rerun_dt =
            std::clamp(high_water - position, 0.0, dt);
        if (rerun_is_io) {
          b.rerun_io += rerun_dt;
        } else {
          b.rerun_local += rerun_dt;
        }
        b.compute += dt - rerun_dt;
        position += dt;
        high_water = std::max(high_water, position);
        break;
      }
      case Kind::kCkptLocal:
        b.ckpt_local += dt;
        break;
      case Kind::kCkptIo:
        b.ckpt_io += dt;
        break;
      case Kind::kRestoreLocal:
        b.restore_local += dt;
        break;
      case Kind::kRestoreIo:
        b.restore_io += dt;
        break;
    }
    // NDP progress: the pipeline runs concurrently with compute/rerun but
    // pauses whenever the host owns the NVM or the network (local writes,
    // restores) - section 4.2.1/4.2.3. With the pause ablated, it also
    // progresses during host NVM writes.
    const bool ndp_runs =
        kind == Kind::kCompute ||
        (!cfg.ndp_pause_on_host_write && kind == Kind::kCkptLocal);
    if (cfg.strategy == Strategy::kLocalIoNdp && ndp_runs &&
        ndp_active_position != kNone) {
      ndp_remaining -= dt;
      if (ndp_remaining <= 0.0) {
        io_ckpt_position = ndp_active_position;
        ++result.io_checkpoints;
        ndp_active_position = kNone;
        ndp_remaining = 0.0;
        start_next_drain();
      }
    }
  }

  void start_next_drain() {
    if (ndp_queued_position == kNone) return;
    ndp_active_position = ndp_queued_position;
    ndp_queued_position = kNone;
    ndp_remaining = self.ndp_drain_time();
  }

  // Advance a phase of `duration` seconds of wall time. Returns true if it
  // completed, false if an interrupt struck (partial effects applied up to
  // the interrupt).
  bool advance(Kind kind, double duration) {
    while (duration > 0.0) {
      const double until_failure = next_failure - now;
      if (duration < until_failure) {
        account(kind, duration);
        now += duration;
        return true;
      }
      if (until_failure > 0.0) account(kind, until_failure);
      now = next_failure;
      next_failure = now + sample_interarrival();
      return false;
    }
    return true;
  }

  void notify_ndp(double ckpt_position) {
    if (ndp_active_position == kNone) {
      ndp_queued_position = ckpt_position;
      start_next_drain();
    } else {
      // Overwrite any queued checkpoint: the NDP always drains the newest
      // (skipping intermediates it cannot keep up with).
      ndp_queued_position = ckpt_position;
    }
  }

  // Handle a failure: pick the recovery level, pay the restore cost
  // (restores can themselves fail), roll back.
  void recover() {
    ++result.failures;
    // Whether this failure is recoverable from local/partner storage is a
    // property of the failure itself (the paper's p_local input); it stays
    // fixed even if the restore is interrupted and retried.
    const bool want_local = cfg.strategy != Strategy::kIoOnly &&
                            rng.next_double() < cfg.p_local_recovery;
    for (;;) {
      const bool has_local = local_ckpt_position != kNone &&
                             cfg.strategy != Strategy::kIoOnly;
      const bool has_io = io_ckpt_position != kNone;
      const bool use_local = want_local && has_local;

      double target = 0.0;
      double restore_duration = 0.0;
      bool is_io_level = true;
      if (use_local) {
        target = local_ckpt_position;
        restore_duration = self.local_restore_time();
        is_io_level = false;
      } else if (has_io) {
        target = io_ckpt_position;
        restore_duration = self.io_restore_time();
      } else {
        // Nothing anywhere: restart from scratch. Attribute the rerun to
        // the IO level (the level that failed to cover the failure) unless
        // the configuration has no IO level at all.
        target = 0.0;
        restore_duration = 0.0;
        is_io_level = cfg.strategy == Strategy::kIoOnly || cfg.io_every > 0 ||
                      cfg.strategy == Strategy::kLocalIoNdp;
        ++result.scratch_restarts;
      }

      // NDP pipeline vs failures: a node loss (IO-level recovery) wipes the
      // NVM and the transfer state, so the drain resets unconditionally.
      // For local-recoverable failures the NVM survives; the drain resumes
      // after recovery unless the abort ablation is on.
      if (cfg.strategy == Strategy::kLocalIoNdp &&
          (!use_local || cfg.ndp_abort_on_failure)) {
        ndp_active_position = kNone;
        ndp_remaining = 0.0;
        ndp_queued_position = kNone;
      }

      const Kind kind =
          is_io_level ? Kind::kRestoreIo : Kind::kRestoreLocal;
      if (!advance(kind, restore_duration)) {
        ++result.failures;
        continue;  // the restore itself was interrupted; recover anew
      }

      position = target;
      rerun_is_io = is_io_level;
      if (restore_duration > 0.0 || target > 0.0 || has_io || has_local) {
        if (is_io_level) {
          ++result.io_recoveries;
        } else {
          ++result.local_recoveries;
        }
      }

      if (cfg.strategy == Strategy::kLocalIoNdp) {
        if (!use_local) {
          // Node replaced: its NVM is empty until the next local commit.
          local_ckpt_position = kNone;
        } else if (ndp_active_position == kNone &&
                   local_ckpt_position != kNone &&
                   local_ckpt_position > (io_ckpt_position == kNone
                                              ? -1.0
                                              : io_ckpt_position)) {
          // The pipeline was idle (or was just aborted): restart the drain
          // of the newest surviving local checkpoint.
          notify_ndp(local_ckpt_position);
        }
      } else if (!use_local) {
        local_ckpt_position = kNone;
      }
      return;
    }
  }

  TimelineResult run() {
    const double local_commit = cfg.strategy == Strategy::kIoOnly
                                    ? self.host_io_commit_time()
                                    : self.local_commit_time();
    // Safety valve: configurations whose progress rate is effectively zero
    // (e.g. restore longer than MTTI with no surviving checkpoints) would
    // otherwise spin forever.
    constexpr std::uint64_t kMaxFailures = 10'000'000;
    while (position < cfg.total_work) {
      if (result.failures > kMaxFailures) {
        throw std::runtime_error(
            "timeline simulation diverged: progress rate ~ 0");
      }
      // Compute until the next scheduled checkpoint (or completion).
      const double seg = std::min(cfg.local_interval,
                                  cfg.total_work - position);
      if (!advance(Kind::kCompute, seg)) {
        recover();
        continue;
      }
      if (position >= cfg.total_work) break;

      if (cfg.strategy == Strategy::kIoOnly) {
        if (!advance(Kind::kCkptIo, local_commit)) {
          recover();
          continue;
        }
        io_ckpt_position = position;
        ++result.io_checkpoints;
        continue;
      }

      // Local commit (host owns the NVM; NDP pauses unless ablated).
      if (!advance(Kind::kCkptLocal, local_commit)) {
        recover();
        continue;
      }
      local_ckpt_position = position;
      ++result.local_checkpoints;
      ++ckpt_counter;

      if (cfg.strategy == Strategy::kLocalIoNdp) {
        notify_ndp(position);
        continue;
      }

      // Host-managed IO level: every io_every-th checkpoint blocks the
      // application while it streams to the file system.
      if (cfg.io_every > 0 && ckpt_counter % cfg.io_every == 0) {
        if (!advance(Kind::kCkptIo, self.host_io_commit_time())) {
          recover();
          continue;
        }
        io_ckpt_position = position;
        ++result.io_checkpoints;
      }
    }
    return result;
  }
};

TimelineResult TimelineSimulator::run() {
  Impl impl(cfg_, *this, seed_);
  return impl.run();
}

TimelineResult TimelineSimulator::run_trials(const TimelineConfig& config,
                                             int trials, std::uint64_t seed,
                                             exec::TaskPool* pool) {
  // The per-trial seed is `seed + t` (the engine's historical serial
  // scheme) and the reduction below folds the per-trial results in trial
  // order, so the aggregate carries no trace of the schedule: any thread
  // count - including pool == nullptr - produces bit-identical output.
  auto run_one = [&](std::size_t t) {
    TimelineSimulator sim(config, seed + static_cast<std::uint64_t>(t));
    return sim.run();
  };

  std::vector<TimelineResult> per_trial;
  if (pool == nullptr || trials <= 1) {
    per_trial.reserve(static_cast<std::size_t>(std::max(trials, 0)));
    for (int t = 0; t < trials; ++t) per_trial.push_back(run_one(t));
  } else {
    per_trial = pool->parallel_map(static_cast<std::size_t>(trials), run_one);
  }

  TimelineResult agg;
  for (const TimelineResult& r : per_trial) {
    agg.breakdown += r.breakdown;
    agg.failures += r.failures;
    agg.local_recoveries += r.local_recoveries;
    agg.io_recoveries += r.io_recoveries;
    agg.scratch_restarts += r.scratch_restarts;
    agg.local_checkpoints += r.local_checkpoints;
    agg.io_checkpoints += r.io_checkpoints;
  }
  agg.trials = std::max(trials, 1);
  if (trials > 1) {
    agg.breakdown = agg.breakdown.scaled(1.0 / trials);
  }
  return agg;
}

TimelineResult TimelineSimulator::run_trials(const TimelineConfig& config,
                                             int trials, std::uint64_t seed) {
  exec::TaskPool* pool =
      exec::TaskPool::in_worker() ? nullptr : &exec::global_pool();
  return run_trials(config, trials, seed, pool);
}

}  // namespace ndpcr::sim
