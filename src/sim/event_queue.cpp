#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndpcr::sim {

namespace {

// Target ~8 events per bucket: a bucket min-scan stays within a couple
// of contiguous cache lines, while the bucket-header array (and its
// per-bucket allocations) shrinks 8x - at 1M nodes the sorted
// one-event-per-bucket layout spent its time in malloc and header
// misses, not in ordering.
constexpr std::size_t kEventsPerBucket = 8;

std::size_t pow2_at_least(std::size_t n, std::size_t lo, std::size_t hi) {
  std::size_t p = lo;
  while (p < n && p < hi) p <<= 1;
  return p;
}

std::size_t buckets_for(std::size_t expected) {
  return pow2_at_least(expected / kEventsPerBucket, 16, 1u << 17);
}

// Index of the bucket's minimum under the total order. Buckets are
// unsorted; the minimum is unique, so pop order does not depend on the
// storage order.
std::size_t min_index(const std::vector<SimEvent>& bucket) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (event_less(bucket[i], bucket[best])) best = i;
  }
  return best;
}

SimEvent take_at(std::vector<SimEvent>& bucket, std::size_t i) {
  const SimEvent out = bucket[i];
  bucket[i] = bucket.back();
  bucket.pop_back();
  return out;
}

}  // namespace

CalendarQueue::CalendarQueue(std::size_t expected, double width_hint) {
  double width = width_hint;
  if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;
  rebuild(buckets_for(expected), width);
}

void CalendarQueue::push(const SimEvent& event) {
  if (!(event.time >= 0.0) || !std::isfinite(event.time)) {
    throw std::invalid_argument(
        "CalendarQueue: event time must be finite and >= 0");
  }
  const std::uint64_t k = widx(event.time);
  buckets_[k & mask_].push_back(event);
  ++size_;
  if (k < cur_window_ || size_ == 1) cur_window_ = k;
  if (size_ > 2 * kEventsPerBucket * buckets_.size()) maybe_retune();
}

SimEvent CalendarQueue::pop() {
  if (size_ == 0) throw std::logic_error("CalendarQueue: pop on empty queue");
  SimEvent out;
  bool found = false;
  for (std::size_t lap = 0; lap <= mask_; ++lap) {
    auto& bucket = buckets_[cur_window_ & mask_];
    if (!bucket.empty()) {
      const std::size_t i = min_index(bucket);
      if (widx(bucket[i].time) <= cur_window_) {
        out = take_at(bucket, i);
        found = true;
        break;
      }
    }
    ++cur_window_;
  }
  if (!found) out = pop_direct();
  --size_;
  const double gap = out.time - last_pop_time_;
  if (gap > 0.0 && std::isfinite(gap)) {
    gap_ema_ = gap_ema_ > 0.0 ? 0.875 * gap_ema_ + 0.125 * gap : gap;
  }
  last_pop_time_ = out.time;
  ++pops_since_tune_;
  if (pops_since_tune_ >= 4 * buckets_.size()) maybe_retune();
  return out;
}

SimEvent CalendarQueue::pop_direct() {
  ++direct_searches_;
  std::vector<SimEvent>* best_bucket = nullptr;
  std::size_t best_i = 0;
  for (auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    const std::size_t i = min_index(bucket);
    if (best_bucket == nullptr ||
        event_less(bucket[i], (*best_bucket)[best_i])) {
      best_bucket = &bucket;
      best_i = i;
    }
  }
  // size_ > 0 guarantees a hit.
  const SimEvent out = take_at(*best_bucket, best_i);
  cur_window_ = widx(out.time);
  return out;
}

void CalendarQueue::maybe_retune() {
  pops_since_tune_ = 0;
  const std::size_t nbuckets = buckets_for(std::max<std::size_t>(size_, 16));
  double width = width_;
  if (gap_ema_ > 0.0 && std::isfinite(gap_ema_)) {
    // Aim for ~2 windows between consecutive dequeues so a pop scans a
    // couple of buckets; only rebuild when meaningfully off target.
    const double target = 2.0 * gap_ema_;
    if (width_ > 8.0 * target || width_ < 0.125 * target) width = target;
  }
  if (nbuckets == buckets_.size() && width == width_) return;
  rebuild(nbuckets, width);
}

void CalendarQueue::rebuild(std::size_t nbuckets, double width) {
  std::vector<SimEvent> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  buckets_.assign(nbuckets, {});
  // One up-front allocation per bucket instead of a 1->2->4->8 growth
  // chain under the initial fill (at 1M nodes that chain was most of
  // the construction cost).
  for (auto& bucket : buckets_) bucket.reserve(2 * kEventsPerBucket);
  mask_ = nbuckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  const std::size_t restored = all.size();
  std::uint64_t min_window = ~std::uint64_t{0};
  for (const auto& event : all) {
    const std::uint64_t k = widx(event.time);
    buckets_[k & mask_].push_back(event);
    min_window = std::min(min_window, k);
  }
  size_ = restored;
  cur_window_ = restored > 0 ? min_window : 0;
}

}  // namespace ndpcr::sim
