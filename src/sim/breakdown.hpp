#pragma once

// The C/R overhead breakdown of section 6.2 / Figure 7: total execution
// time split into useful compute plus six overhead components - checkpoint,
// restore and rerun time, each split by the storage level involved.

namespace ndpcr::sim {

struct Breakdown {
  double compute = 0.0;        // useful (first-time) work
  double ckpt_local = 0.0;     // blocking writes to node-local NVM
  double ckpt_io = 0.0;        // blocking writes to global IO (host configs)
  double restore_local = 0.0;  // reading checkpoints back from local NVM
  double restore_io = 0.0;     // reading checkpoints back from global IO
  double rerun_local = 0.0;    // re-executing work lost to local recoveries
  double rerun_io = 0.0;       // re-executing work lost to IO recoveries

  [[nodiscard]] double overhead() const {
    return ckpt_local + ckpt_io + restore_local + restore_io + rerun_local +
           rerun_io;
  }

  [[nodiscard]] double total() const { return compute + overhead(); }

  // Progress rate / efficiency: fraction of wall-clock time spent on
  // useful work.
  [[nodiscard]] double progress_rate() const {
    const double t = total();
    return t > 0.0 ? compute / t : 0.0;
  }

  Breakdown& operator+=(const Breakdown& o) {
    compute += o.compute;
    ckpt_local += o.ckpt_local;
    ckpt_io += o.ckpt_io;
    restore_local += o.restore_local;
    restore_io += o.restore_io;
    rerun_local += o.rerun_local;
    rerun_io += o.rerun_io;
    return *this;
  }

  [[nodiscard]] Breakdown scaled(double f) const {
    return Breakdown{compute * f,       ckpt_local * f, ckpt_io * f,
                     restore_local * f, restore_io * f, rerun_local * f,
                     rerun_io * f};
  }
};

}  // namespace ndpcr::sim
