#pragma once

// TimelineSimulator: the paper's performance model (section 6.1.1) as a
// Monte Carlo simulation of a single coordinated application timeline.
//
// The simulated system alternates compute segments with checkpoint
// operations while exponentially distributed interrupts (rate 1/MTTI)
// strike at any moment - during compute, checkpointing, restore, or rerun,
// exactly as in Daly's model. Recovery draws the level per the paper: with
// probability `p_local_recovery` the failure is recoverable from
// local/partner storage; otherwise it needs the newest checkpoint that
// reached global IO.
//
// The three strategies of section 6.1.2:
//   kIoOnly      - single-level checkpointing straight to global IO.
//   kLocalIoHost - multilevel; the host blocks while writing every k-th
//                  checkpoint to IO (compression, if any, overlapped with
//                  the write, section 3.5).
//   kLocalIoNdp  - multilevel; the NDP drains checkpoints to IO in the
//                  background (section 4.2), pausing while the host owns
//                  the NVM or network, and aborting in-flight drains on
//                  failure.
//
// Work/rerun accounting: the simulator tracks the application's position
// (completed useful work); compute executed below the previous high-water
// mark is classified rerun, attributed to the level of the recovery that
// caused the rollback (Figure 7's "Rerun Local" / "Rerun I/O").

#include <cstdint>

#include "sim/breakdown.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::sim {

enum class Strategy { kIoOnly, kLocalIoHost, kLocalIoNdp };

struct TimelineConfig {
  Strategy strategy = Strategy::kLocalIoHost;

  double mtti = 1800.0;             // system MTTI (s)
  double checkpoint_bytes = 112e9;  // per node
  double local_bw = 15e9;           // node NVM bandwidth (B/s)
  double io_bw = 100e6;             // per-node share of global IO (B/s)
  double local_interval = 150.0;    // useful work between checkpoints (s)

  // Every k-th checkpoint goes to IO. For kLocalIoHost this is the
  // locally-saved : IO-saved ratio that Figure 4 sweeps. Ignored for
  // kIoOnly; for kLocalIoNdp the NDP drains as fast as it can regardless.
  // 0 disables the IO level entirely (pure local checkpointing).
  std::uint32_t io_every = 0;

  double compression_factor = 0.0;   // 0 = no compression
  double host_compress_bw = 640e6;   // host-side compression (64 x 10 MB/s)
  double host_decompress_bw = 16e9;  // pipelined restore decompression
  double ndp_compress_bw = 440.4e6;  // NDP compression rate (section 5.3)

  double p_local_recovery = 0.85;    // P(failure recoverable from local)

  // Weibull shape of the interrupt inter-arrival distribution. 1.0 is the
  // paper's exponential assumption; Schroeder & Gibson [4] report shapes
  // around 0.7-0.8 for real machines (bursty failures). The mean stays
  // `mtti` for every shape, so this isolates the burstiness effect.
  double failure_shape = 1.0;

  double total_work = 500.0 * 3600;  // useful compute seconds to complete

  // Ablation switches for the NDP pipeline (section 4.2 details). A node
  // loss (IO-level recovery) always resets the pipeline; the abort switch
  // additionally kills in-flight drains on local-recoverable failures,
  // where the NVM (and transfer state) actually survive.
  bool ndp_overlap = true;             // overlap compress and IO write
  bool ndp_pause_on_host_write = true; // yield NVM bandwidth to the host
  bool ndp_abort_on_failure = false;   // abort drains even on local failures
};

struct TimelineResult {
  Breakdown breakdown;
  std::uint64_t failures = 0;
  std::uint64_t local_recoveries = 0;
  std::uint64_t io_recoveries = 0;
  std::uint64_t scratch_restarts = 0;   // failures with no checkpoint at all
  std::uint64_t local_checkpoints = 0;  // completed local commits
  std::uint64_t io_checkpoints = 0;     // checkpoints that reached IO

  // Trials aggregated into this result: 1 for a single run(); run_trials
  // sets the trial count. The breakdown is a per-trial mean; the integer
  // counters above stay exact totals (dividing them would truncate), with
  // the mean_*() accessors providing the exact per-trial means as doubles.
  int trials = 1;

  [[nodiscard]] double mean_failures() const { return mean(failures); }
  [[nodiscard]] double mean_local_recoveries() const {
    return mean(local_recoveries);
  }
  [[nodiscard]] double mean_io_recoveries() const {
    return mean(io_recoveries);
  }
  [[nodiscard]] double mean_scratch_restarts() const {
    return mean(scratch_restarts);
  }
  [[nodiscard]] double mean_local_checkpoints() const {
    return mean(local_checkpoints);
  }
  [[nodiscard]] double mean_io_checkpoints() const {
    return mean(io_checkpoints);
  }

  [[nodiscard]] double progress_rate() const {
    return breakdown.progress_rate();
  }

 private:
  [[nodiscard]] double mean(std::uint64_t total) const {
    return trials > 0 ? static_cast<double>(total) / trials : 0.0;
  }
};

class TimelineSimulator {
 public:
  TimelineSimulator(const TimelineConfig& config, std::uint64_t seed);

  // Run the timeline to completion of config.total_work.
  TimelineResult run();

  // Average of `trials` independent runs (seeds seed, seed+1, ...), fanned
  // out over `pool` (nullptr = serial). Per-trial seeds are fixed by trial
  // index and the reduction folds results in trial order, so the aggregate
  // is bit-identical for any thread count, including the serial path.
  static TimelineResult run_trials(const TimelineConfig& config, int trials,
                                   std::uint64_t seed, exec::TaskPool* pool);

  // Convenience overload: uses exec::global_pool(), or the serial path
  // when already running inside a TaskPool task (nested parallelism is
  // rejected by the engine; see docs/ENGINE.md).
  static TimelineResult run_trials(const TimelineConfig& config, int trials,
                                   std::uint64_t seed);

  // Derived per-operation costs (exposed for tests and the analytic model).
  [[nodiscard]] double local_commit_time() const;
  [[nodiscard]] double local_restore_time() const;
  [[nodiscard]] double host_io_commit_time() const;  // blocking, host configs
  [[nodiscard]] double io_restore_time() const;
  [[nodiscard]] double ndp_drain_time() const;  // background, NDP config

 private:
  struct Impl;
  TimelineConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace ndpcr::sim
