#pragma once

// NIC / interconnect model for the NDP-to-IO checkpoint stream (section
// 4.2.2): the compressed stream is written into the NIC buffer in DMA
// blocks; when the application's own communication contends for the link,
// the buffer can fill, and "checkpoint compression can either be paused
// till additional space is available or the data could be spilled to NVM".
//
// Fluid-flow model: a producer (the NDP compression pipeline) feeds a
// bounded NIC buffer drained by the link at its uncontended bandwidth
// times (1 - contention). Piecewise-constant contention phases; exact
// piecewise-linear integration (no time stepping). Both back-pressure
// policies are implemented so their cost can be compared.

#include <cstddef>
#include <span>
#include <vector>

namespace ndpcr::net {

struct NicConfig {
  double link_bw = 50e9;             // node injection bandwidth (B/s)
  double buffer_bytes = 4 << 20;     // NIC buffer capacity
  double nvm_spill_bw = 15e9;        // NVM bandwidth available for spill
};

enum class BackpressurePolicy {
  kPauseProducer,  // stall compression until the buffer drains
  kSpillToNvm,     // divert overflow to NVM, re-inject later
};

// One phase of application traffic: for `duration` seconds the app
// consumes `fraction` of the link. The last phase is extended as needed
// to finish the transfer.
struct ContentionPhase {
  double duration = 0.0;
  double fraction = 0.0;  // in [0, 1]
};

struct TransferResult {
  double seconds = 0.0;                // time until every byte crossed
  double producer_stall_seconds = 0.0; // pause policy: compression stalled
  double peak_buffer_bytes = 0.0;
  double spilled_bytes = 0.0;          // spill policy: bytes through NVM
};

// Stream `payload_bytes` produced at `producer_bw` through the NIC under
// the given contention schedule. Returns the completion time and policy
// costs. Throws std::invalid_argument for non-positive bandwidths/payload
// or fractions outside [0, 1].
TransferResult simulate_stream(double payload_bytes, double producer_bw,
                               const NicConfig& nic,
                               std::span<const ContentionPhase> contention,
                               BackpressurePolicy policy);

}  // namespace ndpcr::net
