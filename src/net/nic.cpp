#include "net/nic.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ndpcr::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

}  // namespace

TransferResult simulate_stream(double payload_bytes, double producer_bw,
                               const NicConfig& nic,
                               std::span<const ContentionPhase> contention,
                               BackpressurePolicy policy) {
  if (payload_bytes <= 0 || producer_bw <= 0 || nic.link_bw <= 0 ||
      nic.buffer_bytes <= 0 || nic.nvm_spill_bw <= 0) {
    throw std::invalid_argument("nic model inputs must be positive");
  }
  for (const auto& phase : contention) {
    if (phase.fraction < 0.0 || phase.fraction > 1.0 || phase.duration < 0) {
      throw std::invalid_argument("contention fraction must be in [0, 1]");
    }
  }

  // Byte-quantity tolerance scaled to the problem: absolute epsilons are
  // meaningless against multi-gigabyte payloads in double precision.
  const double tol =
      1e-9 * std::max(payload_bytes, nic.buffer_bytes) + 1e-9;

  TransferResult result;
  double t = 0.0;
  double produced = 0.0;  // bytes emitted by the producer so far
  double sent = 0.0;      // bytes that crossed the link
  double buffer = 0.0;
  double spill = 0.0;     // bytes parked in NVM
  double producer_finish_time = -1.0;

  std::size_t phase_idx = 0;
  double phase_left =
      contention.empty() ? kInf : contention[phase_idx].duration;

  // Regime re-evaluation loop; each iteration integrates up to the next
  // event. Bounded for safety; real schedules need far fewer steps.
  for (int iter = 0; iter < 100000; ++iter) {
    const double fraction =
        phase_idx < contention.size() ? contention[phase_idx].fraction : 0.0;
    const double link = nic.link_bw * (1.0 - fraction);

    const bool producing = produced < payload_bytes - tol;
    const bool buffer_full = buffer >= nic.buffer_bytes - tol;

    // Producer inflow toward the buffer.
    double inflow = 0.0;
    double spill_rate = 0.0;  // producer overflow diverted to NVM
    if (producing) {
      if (!buffer_full) {
        inflow = producer_bw;
      } else if (policy == BackpressurePolicy::kPauseProducer) {
        inflow = std::min(producer_bw, link);  // throttled to the drain
      } else {
        inflow = std::min(producer_bw, link);
        spill_rate = std::min(producer_bw - inflow, nic.nvm_spill_bw);
      }
    } else if (spill > tol && !buffer_full) {
      // Re-inject parked bytes once the producer is done.
      inflow = std::min(nic.nvm_spill_bw, link + nic.nvm_spill_bw);
    }

    // Link outflow: drains the buffer, or passes inflow through when the
    // buffer is empty.
    const double outflow =
        buffer > tol ? link : std::min(link, inflow);

    const double net_buffer = inflow - outflow;

    // Candidate event horizons.
    double dt = phase_left;
    if (producing && inflow + spill_rate > kEps) {
      dt = std::min(dt, (payload_bytes - produced) / (inflow + spill_rate));
    }
    if (!producing && spill > tol && inflow > kEps) {
      dt = std::min(dt, spill / inflow);
    }
    if (net_buffer > kEps) {
      dt = std::min(dt, (nic.buffer_bytes - buffer) / net_buffer);
    } else if (net_buffer < -kEps) {
      dt = std::min(dt, buffer / -net_buffer);
    }
    if (outflow > kEps) {
      dt = std::min(dt, (payload_bytes - sent) / outflow);
    }
    if (!(dt > 0.0) || dt == kInf) {
      // No progress possible in this regime (e.g. fully contended link
      // with a full buffer): jump to the next phase boundary.
      if (phase_idx >= contention.size()) {
        throw std::runtime_error("nic transfer cannot make progress");
      }
      dt = phase_left;
    }

    // Integrate.
    t += dt;
    if (producing) {
      produced = std::min(payload_bytes, produced + (inflow + spill_rate) * dt);
      spill += spill_rate * dt;
      result.spilled_bytes += spill_rate * dt;
      if (produced >= payload_bytes - tol && producer_finish_time < 0) {
        producer_finish_time = t;
      }
    } else if (spill > tol) {
      spill = std::max(0.0, spill - inflow * dt);
    }
    buffer = std::clamp(buffer + net_buffer * dt, 0.0, nic.buffer_bytes);
    sent += outflow * dt;
    result.peak_buffer_bytes = std::max(result.peak_buffer_bytes, buffer);
    phase_left -= dt;
    if (phase_left <= kEps && phase_idx < contention.size()) {
      ++phase_idx;
      phase_left =
          phase_idx < contention.size() ? contention[phase_idx].duration
                                        : kInf;
    }

    if (sent >= payload_bytes - tol) {
      result.seconds = t;
      if (producer_finish_time < 0) producer_finish_time = t;
      result.producer_stall_seconds =
          std::max(0.0, producer_finish_time - payload_bytes / producer_bw);
      return result;
    }
  }
  throw std::runtime_error("nic simulation did not converge");
}

}  // namespace ndpcr::net
