#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_stores.hpp"
#include "ndp/agent.hpp"

namespace ndpcr::faults {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: the schedule itself must be pure and overridable.

TEST(FaultPlan, DecideIsPure) {
  const FaultRates rates{0.2, 0.2, 0.2, 0.2};
  FaultPlan a(42, rates);
  FaultPlan b(42, rates);
  for (std::uint64_t op = 0; op < 200; ++op) {
    EXPECT_EQ(a.decide(io_target(), StoreOp::kPut, op),
              b.decide(io_target(), StoreOp::kPut, op));
    EXPECT_EQ(a.salt(io_target(), op), b.salt(io_target(), op));
  }
}

TEST(FaultPlan, ZeroRatesInjectNothing) {
  FaultPlan plan(7);
  for (std::uint64_t op = 0; op < 100; ++op) {
    EXPECT_EQ(plan.decide(local_target(0), StoreOp::kPut, op),
              FaultKind::kNone);
    EXPECT_EQ(plan.decide(io_target(), StoreOp::kGet, op),
              FaultKind::kNone);
  }
}

TEST(FaultPlan, ForcedFaultsOverrideOutages) {
  FaultPlan plan(7);
  plan.add_outage(io_target(), 0, 10);
  plan.force(io_target(), 5, FaultKind::kTorn);
  EXPECT_EQ(plan.decide(io_target(), StoreOp::kPut, 0), FaultKind::kOutage);
  EXPECT_EQ(plan.decide(io_target(), StoreOp::kPut, 5), FaultKind::kTorn);
  EXPECT_EQ(plan.decide(io_target(), StoreOp::kPut, 10), FaultKind::kOutage);
  EXPECT_EQ(plan.decide(io_target(), StoreOp::kPut, 11), FaultKind::kNone);
  // The outage is scoped to one target.
  EXPECT_EQ(plan.decide(partner_target(0), StoreOp::kPut, 0),
            FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Self-healing multilevel data path under exact forced schedules.

ckpt::MultilevelConfig faulty_config(std::shared_ptr<const FaultPlan> plan,
                                     std::uint32_t nodes,
                                     std::uint32_t partner_every,
                                     std::uint32_t io_every) {
  ckpt::MultilevelConfig cfg;
  cfg.node_count = nodes;
  cfg.nvm_capacity_bytes = 1 << 20;
  cfg.partner_every = partner_every;
  cfg.io_every = io_every;
  cfg.store_factory = [plan](ckpt::StoreLevel level, std::uint32_t host)
      -> std::unique_ptr<ckpt::KvStore> {
    const Target target = level == ckpt::StoreLevel::kIo
                              ? io_target()
                              : partner_target(host);
    return std::make_unique<FaultyKvStore>(plan, target);
  };
  return cfg;
}

std::vector<Bytes> two_payloads(std::byte tag) {
  std::vector<Bytes> payloads;
  payloads.push_back(Bytes(512, tag));
  payloads.push_back(Bytes(640, tag));
  return payloads;
}

std::vector<ByteSpan> views(const std::vector<Bytes>& payloads) {
  return {payloads.begin(), payloads.end()};
}

TEST(SelfHealing, TransientErrorsRetryWithBackoff) {
  auto plan = std::make_shared<FaultPlan>(7);
  // The first two IO operations (both put attempts of rank 0's first
  // write) fail transiently; the third attempt succeeds.
  plan->force(io_target(), 0, FaultKind::kTransient);
  plan->force(io_target(), 1, FaultKind::kTransient);
  ckpt::MultilevelManager mgr(faulty_config(plan, 2, 0, 1));

  const auto payloads = two_payloads(std::byte{0x5A});
  mgr.commit(views(payloads));

  const ckpt::LevelHealth& io = mgr.health().io;
  EXPECT_EQ(io.put_retries, 2u);
  EXPECT_EQ(io.put_failures, 0u);
  EXPECT_FALSE(io.degraded());
  // Two virtual backoffs: 0.01 then 0.01 * 2.
  EXPECT_NEAR(io.backoff_seconds, 0.03, 1e-12);
  EXPECT_TRUE(mgr.io_store().contains(0, 1));
  EXPECT_TRUE(mgr.io_store().contains(1, 1));
}

TEST(SelfHealing, TornWriteQuarantinedAndRewritten) {
  auto plan = std::make_shared<FaultPlan>(11);
  // Rank 0's first IO put lands truncated but reports success; only the
  // verify readback can catch it.
  plan->force(io_target(), 0, FaultKind::kTorn);
  ckpt::MultilevelManager mgr(faulty_config(plan, 2, 0, 1));

  const auto payloads = two_payloads(std::byte{0x33});
  mgr.commit(views(payloads));

  const ckpt::LevelHealth& io = mgr.health().io;
  EXPECT_EQ(io.verify_failures, 1u);
  EXPECT_EQ(io.quarantined, 1u);
  EXPECT_EQ(io.put_retries, 1u);
  EXPECT_EQ(io.put_failures, 0u);
  EXPECT_FALSE(io.degraded());

  // The rewritten entry is intact: lose both nodes and restore from IO.
  mgr.fail_node(0);
  mgr.fail_node(1);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, 1u);
  EXPECT_EQ(rec->levels[0], ckpt::RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[0], payloads[0]);
  EXPECT_EQ(rec->payloads[1], payloads[1]);
}

TEST(SelfHealing, IoOutageDegradesThenRepairs) {
  auto plan = std::make_shared<FaultPlan>(3);
  // IO device down for ops 0..3: commit 1 burns two put attempts (one per
  // rank), commits 2 and 3 burn one probe each. Commit 4 probes op 4,
  // which succeeds, and the level heals.
  plan->add_outage(io_target(), 0, 3);
  ckpt::MultilevelManager mgr(faulty_config(plan, 2, 1, 1));

  const auto payloads = two_payloads(std::byte{0x77});
  mgr.commit(views(payloads));  // id 1: IO down, level degrades
  EXPECT_TRUE(mgr.health().io.degraded());
  EXPECT_GE(mgr.health().io.put_failures, 2u);
  EXPECT_EQ(mgr.health().io.repairs, 0u);

  mgr.commit(views(payloads));  // id 2: probe fails, commit still succeeds
  mgr.commit(views(payloads));  // id 3: probe fails
  EXPECT_TRUE(mgr.health().io.degraded());
  EXPECT_EQ(mgr.health().degraded_commits, 3u);
  EXPECT_EQ(mgr.health().commits, 3u);

  // Mid-outage the application is still fully recoverable from the
  // surviving levels.
  const auto mid = mgr.recover();
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->checkpoint_id, 3u);
  EXPECT_EQ(mid->payloads[0], payloads[0]);

  mgr.commit(views(payloads));  // id 4: outage cleared, probe repairs
  EXPECT_FALSE(mgr.health().io.degraded());
  EXPECT_EQ(mgr.health().io.repairs, 1u);
  EXPECT_TRUE(mgr.io_store().contains(0, 4));
  EXPECT_TRUE(mgr.io_store().contains(1, 4));
  EXPECT_EQ(mgr.health().degraded_commits, 3u);  // no new degraded commits
}

TEST(SelfHealing, LocalTornWriteCaughtByVerify) {
  auto plan = std::make_shared<FaultPlan>(19);
  plan->force(local_target(0), 0, FaultKind::kTorn);
  auto stats = std::make_shared<FaultStats>();

  ckpt::MultilevelConfig cfg;
  cfg.node_count = 2;
  cfg.nvm_capacity_bytes = 1 << 20;
  cfg.partner_every = 1;
  cfg.io_every = 0;
  cfg.local_write_hook = make_local_write_hook(plan, stats);
  ckpt::MultilevelManager mgr(cfg);

  const auto payloads = two_payloads(std::byte{0x21});
  mgr.commit(views(payloads));

  EXPECT_EQ(stats->torn_writes, 1u);
  EXPECT_EQ(mgr.health().local.verify_failures, 1u);
  EXPECT_EQ(mgr.health().local.quarantined, 1u);
  // The rewrite verified: recovery still comes from local NVM.
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[0], ckpt::RecoveryLevel::kLocal);
  EXPECT_EQ(rec->payloads[0], payloads[0]);
}

// ---------------------------------------------------------------------------
// NDP agent: drain retries and host fallback.

Bytes compressible_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(4));
  return data;
}

ndp::AgentConfig agent_config() {
  ndp::AgentConfig cfg;
  cfg.uncompressed_capacity = 1 << 20;
  cfg.compressed_capacity = 1 << 20;
  cfg.compress_bw = 1e6;
  cfg.io_bw = 0.5e6;
  return cfg;
}

TEST(NdpAgentFaults, TransientIoErrorRetriedWithBackoff) {
  auto plan = std::make_shared<FaultPlan>(23);
  plan->force(io_target(), 0, FaultKind::kTransient);
  FaultyKvStore io(plan, io_target());
  ndp::NdpAgent agent(agent_config(), io);

  const Bytes image = compressible_image(100 * 1024, 1);
  ASSERT_TRUE(agent.host_commit(1, image));
  agent.pump(1e9);

  EXPECT_EQ(agent.stats().drain_put_retries, 1u);
  EXPECT_EQ(agent.stats().drain_put_failures, 0u);
  EXPECT_NEAR(agent.stats().retry_backoff_seconds, 0.05, 1e-12);
  ASSERT_TRUE(agent.newest_on_io().has_value());
  EXPECT_EQ(agent.newest_on_io().value(), 1u);
  EXPECT_TRUE(io.contains(0, 1));
  EXPECT_EQ(io.stats().transient_errors, 1u);
}

TEST(NdpAgentFaults, TornIoWriteQuarantinedAndRetried) {
  auto plan = std::make_shared<FaultPlan>(29);
  plan->force(io_target(), 0, FaultKind::kTorn);
  FaultyKvStore io(plan, io_target());
  ndp::NdpAgent agent(agent_config(), io);

  const Bytes image = compressible_image(100 * 1024, 2);
  ASSERT_TRUE(agent.host_commit(1, image));
  agent.pump(1e9);

  EXPECT_EQ(agent.stats().drain_put_retries, 1u);
  EXPECT_EQ(agent.stats().drains_completed, 1u);
  // The landed copy is the intact compressed image.
  const auto packed = io.get(0, 1);
  ASSERT_TRUE(packed.ok());
  const compress::ChunkedCodec codec(compress::CodecId::kDeflateStyle, 1);
  EXPECT_EQ(codec.decompress(*packed), image);
}

TEST(NdpAgentFaults, PermanentOutageFallsBackToHostPath) {
  auto plan = std::make_shared<FaultPlan>(31);
  plan->add_outage(io_target(), 0, std::uint64_t{0} - 1);
  FaultyKvStore io(plan, io_target());
  ndp::NdpAgent agent(agent_config(), io);

  const Bytes image = compressible_image(100 * 1024, 3);
  ASSERT_TRUE(agent.host_commit(1, image));
  agent.pump(1e9);

  // No retries against a permanent outage: the drain hands the compressed
  // image back to the host immediately.
  EXPECT_EQ(agent.stats().drain_put_retries, 0u);
  EXPECT_EQ(agent.stats().drain_put_failures, 1u);
  EXPECT_FALSE(agent.newest_on_io().has_value());
  EXPECT_FALSE(agent.busy());

  auto fallback = agent.take_host_fallback();
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->checkpoint_id, 1u);
  const compress::ChunkedCodec codec(compress::CodecId::kDeflateStyle, 1);
  EXPECT_EQ(codec.decompress(fallback->compressed), image);
  // Collected once.
  EXPECT_FALSE(agent.take_host_fallback().has_value());
}

// ---------------------------------------------------------------------------
// Chaos soak: seeded schedules across schemes/codecs/outages, run through
// the engine pool, must hold every recovery invariant and reproduce
// bit-identically at any thread count.

std::vector<ChaosConfig> small_suite(std::size_t count) {
  const compress::CodecId codecs[] = {
      compress::CodecId::kNull, compress::CodecId::kRle,
      compress::CodecId::kLz4Style, compress::CodecId::kDeflateStyle};
  std::vector<ChaosConfig> configs;
  configs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    ChaosConfig cfg;
    cfg.seed = exec::sub_seed(20170101, k);
    cfg.commits = 16;
    cfg.scheme = (k % 2 == 0) ? ckpt::PartnerScheme::kCopy
                              : ckpt::PartnerScheme::kXorGroup;
    cfg.io_codec = codecs[(k / 2) % 4];
    cfg.io_outage = (k % 5) == 4;
    configs.push_back(cfg);
  }
  return configs;
}

TEST(Chaos, SoakHoldsRecoveryInvariants) {
  exec::TaskPool pool(4);
  const auto configs = small_suite(48);
  const auto reports = run_chaos_suite(configs, pool);
  ASSERT_EQ(reports.size(), configs.size());

  std::uint64_t injected = 0;
  std::uint64_t recoveries = 0;
  for (const auto& r : reports) {
    EXPECT_EQ(r.violations, 0u)
        << (r.violation_notes.empty() ? "(no note)"
                                      : r.violation_notes.front());
    injected += r.faults.injected();
    recoveries += r.recoveries;
  }
  // The soak genuinely exercised the fault and recovery paths.
  EXPECT_GT(injected, 0u);
  EXPECT_GT(recoveries, 0u);
}

TEST(Chaos, FingerprintIsThreadCountInvariant) {
  const auto configs = small_suite(24);
  exec::TaskPool one(1);
  exec::TaskPool four(4);
  const auto a = run_chaos_suite(configs, one);
  const auto b = run_chaos_suite(configs, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint) << "schedule " << i;
  }
  EXPECT_EQ(suite_fingerprint(a), suite_fingerprint(b));
}

// ---------------------------------------------------------------------------
// Thread invariance: the parallel commit/recover data path must be an
// execution detail. Payload bytes, checkpoint ids, stored IO containers,
// recovery results and every health counter (fingerprinted bit-for-bit,
// backoff doubles included) must match across pool sizes, with and
// without a seeded fault schedule.

struct DataPathTrace {
  std::vector<std::uint64_t> ids;
  std::vector<Bytes> io_bytes;  // newest id's per-rank IO containers
  std::uint64_t recovered_id = 0;
  std::vector<Bytes> recovered;
  std::vector<ckpt::RecoveryLevel> levels;
  std::uint64_t put_retries = 0;
  std::uint32_t health_fp = 0;
};

DataPathTrace run_data_path(unsigned pool_threads, bool with_faults) {
  exec::TaskPool pool(pool_threads);
  ckpt::MultilevelConfig mc;
  mc.node_count = 6;
  mc.nvm_capacity_bytes = 1 << 20;
  mc.partner_every = 1;
  mc.io_every = 1;
  mc.partner_scheme = ckpt::PartnerScheme::kXorGroup;
  mc.xor_group_size = 3;
  mc.io_codec = compress::CodecId::kDeflateStyle;
  mc.io_codec_level = 1;
  mc.io_chunk_bytes = 2048;  // several chunks per rank
  mc.io_threads = 0;         // resolve to the pool's size
  mc.pool = &pool;
  if (with_faults) {
    auto plan = std::make_shared<FaultPlan>(
        777, FaultRates{0.05, 0.03, 0.02, 0.02});
    mc.store_factory = [plan](ckpt::StoreLevel level, std::uint32_t host) {
      const Target target = level == ckpt::StoreLevel::kIo
                                ? io_target()
                                : partner_target(host);
      return std::make_unique<FaultyKvStore>(plan, target);
    };
    mc.local_write_hook = make_local_write_hook(plan, nullptr);
  }
  ckpt::MultilevelManager manager(mc);

  DataPathTrace trace;
  Rng rng(31337);
  for (int i = 0; i < 6; ++i) {
    std::vector<Bytes> payloads;
    for (std::uint32_t r = 0; r < mc.node_count; ++r) {
      Bytes p(6000 + rng.next_below(500));
      for (auto& b : p) b = static_cast<std::byte>(rng.next_below(7));
      payloads.push_back(std::move(p));
    }
    const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    trace.ids.push_back(manager.commit(views));
  }
  for (std::uint32_t r = 0; r < mc.node_count; ++r) {
    const auto got = manager.io_store().get(r, trace.ids.back());
    trace.io_bytes.push_back(got.ok() ? *got : Bytes{});
  }
  if (const auto recovery = manager.recover()) {
    trace.recovered_id = recovery->checkpoint_id;
    trace.recovered = recovery->payloads;
    trace.levels = recovery->levels;
  }
  const auto& health = manager.health();
  trace.put_retries = health.local.put_retries +
                      health.partner.put_retries + health.io.put_retries;
  trace.health_fp = health_fingerprint(health);
  return trace;
}

TEST(ThreadInvariance, CleanDataPathBitIdenticalAcrossPoolSizes) {
  const auto base = run_data_path(1, /*with_faults=*/false);
  ASSERT_EQ(base.recovered_id, base.ids.back());
  for (unsigned threads : {2u, 8u}) {
    const auto other = run_data_path(threads, false);
    EXPECT_EQ(other.ids, base.ids) << threads << " threads";
    EXPECT_EQ(other.io_bytes, base.io_bytes) << threads << " threads";
    EXPECT_EQ(other.recovered_id, base.recovered_id);
    EXPECT_EQ(other.recovered, base.recovered) << threads << " threads";
    EXPECT_EQ(other.levels, base.levels) << threads << " threads";
    EXPECT_EQ(other.health_fp, base.health_fp) << threads << " threads";
  }
}

TEST(ThreadInvariance, FaultReplayBitIdenticalAcrossPoolSizes) {
  const auto base = run_data_path(1, /*with_faults=*/true);
  // The schedule genuinely fired (otherwise this test proves nothing).
  EXPECT_GT(base.put_retries, 0u);
  for (unsigned threads : {2u, 8u}) {
    const auto other = run_data_path(threads, true);
    EXPECT_EQ(other.ids, base.ids) << threads << " threads";
    EXPECT_EQ(other.io_bytes, base.io_bytes) << threads << " threads";
    EXPECT_EQ(other.recovered_id, base.recovered_id);
    EXPECT_EQ(other.recovered, base.recovered) << threads << " threads";
    EXPECT_EQ(other.levels, base.levels) << threads << " threads";
    EXPECT_EQ(other.put_retries, base.put_retries);
    EXPECT_EQ(other.health_fp, base.health_fp) << threads << " threads";
  }
}

TEST(ThreadInvariance, ChaosFingerprintInvariantAcrossManagerPools) {
  // Whole chaos schedules driven through differently-sized manager pools
  // (not suite pools: the manager's own data path is what varies here).
  ChaosConfig cfg;
  cfg.seed = 555;
  cfg.commits = 16;
  cfg.io_codec = compress::CodecId::kDeflateStyle;
  cfg.io_chunk_bytes = 1024;
  cfg.io_threads = 0;
  exec::TaskPool one(1);
  exec::TaskPool two(2);
  exec::TaskPool eight(8);
  cfg.pool = &one;
  const auto a = run_chaos(cfg);
  cfg.pool = &two;
  const auto b = run_chaos(cfg);
  cfg.pool = &eight;
  const auto c = run_chaos(cfg);
  EXPECT_GT(a.faults.injected(), 0u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.violations, 0u);
}

// ---------------------------------------------------------------------------
// Incremental commit path under chaos (docs/DELTA.md): torn mid-chain
// deltas, killed anchor fulls, seeded soaks with delta + dedup enabled,
// and thread-invariance of the delta-mode fingerprint at pools 1/2/8.

// Evolving per-rank payloads: each commit rewrites one small region, so
// consecutive commits genuinely delta-encode.
std::vector<std::vector<Bytes>> evolving_payloads(std::uint32_t ranks,
                                                  std::uint32_t commits,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> state;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    Bytes p(2048);
    for (auto& b : p) b = static_cast<std::byte>(rng.next_below(256));
    state.push_back(std::move(p));
  }
  std::vector<std::vector<Bytes>> history;
  for (std::uint32_t c = 0; c < commits; ++c) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const std::size_t at = rng.next_below(state[r].size() - 64);
      for (std::size_t i = 0; i < 64; ++i) {
        state[r][at + i] = static_cast<std::byte>(rng.next_below(256));
      }
    }
    history.push_back(state);
  }
  return history;
}

TEST(ChaosDelta, TornMidChainDeltaFallsBackToIntactAnchor) {
  // IO is the only surviving level after both nodes die; the newest IO
  // entry for rank 0 (a mid-chain delta) is torn. Recovery must abandon
  // the broken chain tip and settle on the newest checkpoint whose whole
  // chain is intact - never return a wrong payload.
  ckpt::MultilevelConfig mc;
  mc.node_count = 2;
  mc.nvm_capacity_bytes = 1 << 20;
  mc.partner_every = 0;
  mc.io_every = 1;
  mc.delta.enabled = true;
  mc.delta.chain_length = 3;
  mc.delta.block_bytes = 128;
  ckpt::MultilevelManager mgr(mc);

  const auto history = evolving_payloads(2, 4, 71);  // kinds: F D D D
  for (const auto& payloads : history) mgr.commit(views(payloads));

  ASSERT_TRUE(mgr.corrupt_io(0));  // tears the id-4 delta link
  mgr.fail_node(0);
  mgr.fail_node(1);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, 3u);
  EXPECT_EQ(rec->payloads, history[2]);
  EXPECT_EQ(rec->levels[0], ckpt::RecoveryLevel::kIo);
  EXPECT_EQ(rec->levels[1], ckpt::RecoveryLevel::kIo);
}

TEST(ChaosDelta, KilledAnchorFullRecoversOlderCheckpoint) {
  // Local NVM only. Kill one rank's anchor full and tear the other
  // rank's chain tip: every checkpoint above the previous intact chain
  // is unrecoverable, and recovery walks back to it.
  ckpt::MultilevelConfig mc;
  mc.node_count = 2;
  mc.nvm_capacity_bytes = 1 << 20;
  mc.partner_every = 0;
  mc.io_every = 0;
  mc.delta.enabled = true;
  mc.delta.chain_length = 2;
  mc.delta.block_bytes = 128;
  ckpt::MultilevelManager mgr(mc);

  const auto history = evolving_payloads(2, 5, 73);  // kinds: F D D F D
  for (const auto& payloads : history) mgr.commit(views(payloads));

  mgr.local_store(0).erase(4);       // rank 0 loses the second anchor
  ASSERT_TRUE(mgr.corrupt_local(1));  // rank 1's newest delta is torn
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, 3u);  // newest id whose chains all replay
  EXPECT_EQ(rec->payloads, history[2]);
}

TEST(ChaosDelta, SoakWithDeltaDedupHoldsInvariants) {
  exec::TaskPool pool(4);
  std::vector<ChaosConfig> configs;
  for (std::size_t k = 0; k < 16; ++k) {
    ChaosConfig cfg;
    cfg.seed = exec::sub_seed(20250808, k);
    cfg.commits = 16;
    cfg.delta_chain = 2 + static_cast<std::uint32_t>(k % 3);
    cfg.io_dedup = (k % 2) == 0;
    cfg.sparse_updates = true;
    cfg.io_codec = (k % 4 < 2) ? compress::CodecId::kNull
                               : compress::CodecId::kLz4Style;
    cfg.io_outage = (k % 5) == 4;
    configs.push_back(cfg);
  }
  const auto reports = run_chaos_suite(configs, pool);
  ASSERT_EQ(reports.size(), configs.size());
  std::uint64_t injected = 0, recoveries = 0, deltas = 0, dup_bytes = 0;
  for (const auto& r : reports) {
    EXPECT_EQ(r.violations, 0u)
        << (r.violation_notes.empty() ? "(no note)"
                                      : r.violation_notes.front());
    injected += r.faults.injected();
    recoveries += r.recoveries;
    deltas += r.data.commits_delta;
    dup_bytes += r.data.dedup_dup_bytes;
  }
  // The soak exercised faults, recoveries, delta chains and dedup hits.
  EXPECT_GT(injected, 0u);
  EXPECT_GT(recoveries, 0u);
  EXPECT_GT(deltas, 0u);
  EXPECT_GT(dup_bytes, 0u);
}

TEST(ChaosDelta, FingerprintThreadInvariantAtPools128) {
  // The delta + dedup + sparse-update data path must stay an execution
  // detail: whole chaos schedules fingerprint identically (DataPathStats
  // included) through 1-, 2- and 8-thread manager pools.
  ChaosConfig cfg;
  cfg.seed = 808;
  cfg.commits = 16;
  cfg.delta_chain = 3;
  cfg.io_dedup = true;
  cfg.sparse_updates = true;
  cfg.io_codec = compress::CodecId::kDeflateStyle;
  cfg.io_chunk_bytes = 1024;
  cfg.io_threads = 0;
  exec::TaskPool one(1);
  exec::TaskPool two(2);
  exec::TaskPool eight(8);
  cfg.pool = &one;
  const auto a = run_chaos(cfg);
  cfg.pool = &two;
  const auto b = run_chaos(cfg);
  cfg.pool = &eight;
  const auto c = run_chaos(cfg);
  EXPECT_GT(a.faults.injected(), 0u);
  EXPECT_GT(a.data.commits_delta, 0u);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
}

TEST(Chaos, RerunReproducesBitIdentically) {
  ChaosConfig cfg;
  cfg.seed = 99;
  cfg.commits = 20;
  cfg.io_outage = true;
  const ChaosReport a = run_chaos(cfg);
  const ChaosReport b = run_chaos(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.recoveries, a.recoveries);
  EXPECT_EQ(b.faults.injected(), a.faults.injected());
}

}  // namespace
}  // namespace ndpcr::faults
