#include <gtest/gtest.h>

#include <vector>

#include "net/nic.hpp"

namespace ndpcr::net {
namespace {

NicConfig small_nic() {
  NicConfig nic;
  nic.link_bw = 100.0;       // 100 B/s: hand-checkable numbers
  nic.buffer_bytes = 50.0;
  nic.nvm_spill_bw = 200.0;
  return nic;
}

TEST(Nic, UncontendedLinkBoundTransfer) {
  // Producer faster than link: completion is payload / link.
  const auto r = simulate_stream(1000.0, 500.0, small_nic(), {},
                                 BackpressurePolicy::kPauseProducer);
  EXPECT_NEAR(r.seconds, 10.0, 1e-9);
  EXPECT_NEAR(r.peak_buffer_bytes, 50.0, 1e-6);  // buffer fills
  EXPECT_DOUBLE_EQ(r.spilled_bytes, 0.0);
  // Producer stall: it fills the buffer at full rate (50 B by t = 0.125),
  // then trickles at link speed until its last byte enters the buffer at
  // t = 9.5; unthrottled it would have finished at t = 2.
  EXPECT_NEAR(r.producer_stall_seconds, 7.5, 1e-6);
}

TEST(Nic, UncontendedProducerBoundTransfer) {
  // Producer slower than link: completion is payload / producer and the
  // buffer never grows.
  const auto r = simulate_stream(1000.0, 50.0, small_nic(), {},
                                 BackpressurePolicy::kPauseProducer);
  EXPECT_NEAR(r.seconds, 20.0, 1e-9);
  EXPECT_NEAR(r.peak_buffer_bytes, 0.0, 1e-6);
  EXPECT_NEAR(r.producer_stall_seconds, 0.0, 1e-9);
}

TEST(Nic, ContentionSlowsTheStream) {
  // 50% contention for the first 10 s: only 500 B cross by then.
  const std::vector<ContentionPhase> phases = {{10.0, 0.5}};
  const auto r = simulate_stream(1000.0, 1000.0, small_nic(), phases,
                                 BackpressurePolicy::kPauseProducer);
  EXPECT_NEAR(r.seconds, 10.0 + 500.0 / 100.0, 1e-6);
}

TEST(Nic, FullContentionBlocksUntilPhaseEnds) {
  const std::vector<ContentionPhase> phases = {{5.0, 1.0}};
  const auto r = simulate_stream(100.0, 1000.0, small_nic(), phases,
                                 BackpressurePolicy::kPauseProducer);
  // Nothing moves for 5 s (buffer fills to 50 and stops), then 100 B at
  // 100 B/s.
  EXPECT_NEAR(r.seconds, 6.0, 1e-6);
  EXPECT_NEAR(r.peak_buffer_bytes, 50.0, 1e-6);
}

TEST(Nic, SpillPolicyKeepsProducerRunning) {
  const std::vector<ContentionPhase> phases = {{5.0, 1.0}};
  const auto pause = simulate_stream(600.0, 100.0, small_nic(), phases,
                                     BackpressurePolicy::kPauseProducer);
  const auto spill = simulate_stream(600.0, 100.0, small_nic(), phases,
                                     BackpressurePolicy::kSpillToNvm);
  // Pause: producer stalls while the link is contended.
  EXPECT_GT(pause.producer_stall_seconds, 1.0);
  EXPECT_DOUBLE_EQ(pause.spilled_bytes, 0.0);
  // Spill: producer finishes on time; overflow goes to NVM.
  EXPECT_NEAR(spill.producer_stall_seconds, 0.0, 1e-6);
  EXPECT_GT(spill.spilled_bytes, 100.0);
  // Either way every byte crosses the link eventually; with the link as
  // the bottleneck both complete at t = 5 s (blocked) + 600 B / 100 B/s.
  EXPECT_NEAR(pause.seconds, 11.0, 1e-6);
  EXPECT_NEAR(spill.seconds, 11.0, 1e-6);
}

TEST(Nic, TotalBytesConserved) {
  // Whatever the policy and contention, completion implies payload bytes
  // crossed: time >= payload / min(link capacity left).
  const std::vector<ContentionPhase> phases = {{2.0, 0.8}, {3.0, 0.2}};
  for (auto policy : {BackpressurePolicy::kPauseProducer,
                      BackpressurePolicy::kSpillToNvm}) {
    const auto r = simulate_stream(2000.0, 300.0, small_nic(), phases, policy);
    // Link capacity: 2 s * 20 + 3 s * 80 + rest at 100.
    const double by_phase_end = 2 * 20 + 3 * 80;
    const double expected = 5.0 + (2000.0 - by_phase_end) / 100.0;
    EXPECT_NEAR(r.seconds, expected, 0.2) << static_cast<int>(policy);
  }
}

TEST(Nic, InvalidInputsThrow) {
  EXPECT_THROW(simulate_stream(0, 1, small_nic(), {},
                               BackpressurePolicy::kPauseProducer),
               std::invalid_argument);
  NicConfig bad = small_nic();
  bad.link_bw = 0;
  EXPECT_THROW(simulate_stream(1, 1, bad, {},
                               BackpressurePolicy::kPauseProducer),
               std::invalid_argument);
  const std::vector<ContentionPhase> phases = {{1.0, 1.5}};
  EXPECT_THROW(simulate_stream(1, 1, small_nic(), phases,
                               BackpressurePolicy::kPauseProducer),
               std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::net
