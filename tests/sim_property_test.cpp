// Property sweeps over the timeline simulator: conservation laws and
// monotonicities that must hold for ANY configuration, checked across a
// parameterized grid of strategies, compression factors and recovery
// probabilities.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/timeline.hpp"

namespace ndpcr::sim {
namespace {

using Param = std::tuple<Strategy, double /*cf*/, double /*p_local*/>;

TimelineConfig config_for(const Param& param) {
  TimelineConfig cfg;
  cfg.strategy = std::get<0>(param);
  cfg.compression_factor = std::get<1>(param);
  cfg.p_local_recovery = std::get<2>(param);
  if (cfg.strategy == Strategy::kLocalIoHost) cfg.io_every = 20;
  cfg.total_work = 120.0 * 3600;
  return cfg;
}

class TimelinePropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(TimelinePropertyTest, UsefulWorkIsConserved) {
  // The compute component counts first-time work exactly once: at
  // completion it must equal the configured total work, to the last
  // microsecond.
  const TimelineConfig cfg = config_for(GetParam());
  const TimelineResult r = TimelineSimulator(cfg, 11).run();
  EXPECT_NEAR(r.breakdown.compute, cfg.total_work, 1e-6);
}

TEST_P(TimelinePropertyTest, ComponentsAreNonNegativeAndBounded) {
  const TimelineConfig cfg = config_for(GetParam());
  const TimelineResult r = TimelineSimulator(cfg, 13).run();
  const auto& b = r.breakdown;
  for (double component : {b.compute, b.ckpt_local, b.ckpt_io,
                           b.restore_local, b.restore_io, b.rerun_local,
                           b.rerun_io}) {
    EXPECT_GE(component, 0.0);
  }
  EXPECT_GT(r.progress_rate(), 0.0);
  EXPECT_LE(r.progress_rate(), 1.0);
}

TEST_P(TimelinePropertyTest, FailureRateMatchesMtti) {
  const TimelineConfig cfg = config_for(GetParam());
  const TimelineResult r = TimelineSimulator::run_trials(cfg, 4, 17);
  const double wall = r.breakdown.total() * 4;
  EXPECT_NEAR(static_cast<double>(r.failures) * cfg.mtti / wall, 1.0, 0.12);
}

TEST_P(TimelinePropertyTest, RecoveriesDoNotExceedFailures) {
  const TimelineConfig cfg = config_for(GetParam());
  const TimelineResult r = TimelineSimulator(cfg, 19).run();
  EXPECT_LE(r.local_recoveries + r.io_recoveries + r.scratch_restarts,
            r.failures);
}

TEST_P(TimelinePropertyTest, IoCheckpointsNeverOutnumberLocal) {
  const TimelineConfig cfg = config_for(GetParam());
  const TimelineResult r = TimelineSimulator(cfg, 23).run();
  if (cfg.strategy != Strategy::kIoOnly) {
    EXPECT_LE(r.io_checkpoints, r.local_checkpoints);
  }
}

TEST_P(TimelinePropertyTest, MoreReliableMachineIsNeverWorse) {
  // Doubling the MTTI (same seed, common random numbers) must not lower
  // the progress rate.
  TimelineConfig cfg = config_for(GetParam());
  const double base =
      TimelineSimulator::run_trials(cfg, 3, 29).progress_rate();
  cfg.mtti *= 2.0;
  const double reliable =
      TimelineSimulator::run_trials(cfg, 3, 29).progress_rate();
  EXPECT_GT(reliable, base - 0.01);
}

TEST_P(TimelinePropertyTest, SmallerCheckpointsAreNeverWorse) {
  TimelineConfig cfg = config_for(GetParam());
  const double base =
      TimelineSimulator::run_trials(cfg, 3, 31).progress_rate();
  cfg.checkpoint_bytes /= 4.0;
  const double smaller =
      TimelineSimulator::run_trials(cfg, 3, 31).progress_rate();
  EXPECT_GT(smaller, base - 0.01);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [strategy, cf, p] = info.param;
  std::string name;
  switch (strategy) {
    case Strategy::kIoOnly: name = "IoOnly"; break;
    case Strategy::kLocalIoHost: name = "Host"; break;
    case Strategy::kLocalIoNdp: name = "Ndp"; break;
  }
  name += "_cf" + std::to_string(static_cast<int>(cf * 100));
  name += "_p" + std::to_string(static_cast<int>(p * 100));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimelinePropertyTest,
    ::testing::Combine(::testing::Values(Strategy::kIoOnly,
                                         Strategy::kLocalIoHost,
                                         Strategy::kLocalIoNdp),
                       ::testing::Values(0.0, 0.73),
                       ::testing::Values(0.5, 0.96)),
    param_name);

}  // namespace
}  // namespace ndpcr::sim
