#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "workloads/array_state.hpp"
#include "workloads/miniapp.hpp"
#include "workloads/proxy_kernels.hpp"

namespace ndpcr::workloads {
namespace {

TEST(ArrayState, QuantizeMantissa) {
  const double x = 1.2345678901234567;
  EXPECT_EQ(quantize_mantissa(x, 52), x);
  const double q = quantize_mantissa(x, 8);
  EXPECT_NE(q, x);
  EXPECT_NEAR(q, x, 1e-2);  // 8 mantissa bits keep ~2-3 decimal digits
  // Idempotent.
  EXPECT_EQ(quantize_mantissa(q, 8), q);
  // Exact values with short mantissas are preserved.
  EXPECT_EQ(quantize_mantissa(2.0, 4), 2.0);
  EXPECT_EQ(quantize_mantissa(-0.5, 1), -0.5);
}

TEST(ArrayState, SerializeDeserializeRoundTrip) {
  ArrayState a;
  const auto d0 = a.add_doubles("field", 100);
  const auto i0 = a.add_ints("index", 50);
  for (std::size_t i = 0; i < 100; ++i) {
    a.doubles(d0)[i] = 0.25 * static_cast<double>(i);
  }
  for (std::size_t i = 0; i < 50; ++i) {
    a.ints(i0)[i] = static_cast<std::int32_t>(i * 3);
  }
  Bytes image;
  a.serialize(image, 42);

  ArrayState b;
  b.add_doubles("field", 100);
  b.add_ints("index", 50);
  EXPECT_EQ(b.deserialize(image), 42u);
  EXPECT_EQ(b.digest(), a.digest());
}

TEST(ArrayState, DeserializeRejectsLayoutMismatch) {
  ArrayState a;
  a.add_doubles("field", 100);
  Bytes image;
  a.serialize(image, 1);

  ArrayState wrong_size;
  wrong_size.add_doubles("field", 99);
  EXPECT_THROW(wrong_size.deserialize(image), std::runtime_error);

  ArrayState wrong_name;
  wrong_name.add_doubles("other", 100);
  EXPECT_THROW(wrong_name.deserialize(image), std::runtime_error);

  ArrayState extra;
  extra.add_doubles("field", 100);
  extra.add_ints("idx", 4);
  EXPECT_THROW(extra.deserialize(image), std::runtime_error);
}

TEST(ArrayState, DeserializeRejectsGarbage) {
  ArrayState a;
  a.add_doubles("field", 4);
  const Bytes junk(100, std::byte{0x5A});
  EXPECT_THROW(a.deserialize(junk), std::runtime_error);
  EXPECT_THROW(a.deserialize(ByteSpan{}), std::runtime_error);
}

TEST(MiniApps, FactoryKnowsAllSeven) {
  EXPECT_EQ(miniapp_names().size(), 7u);
  for (const auto& name : miniapp_names()) {
    const auto app = make_miniapp(name, 64 * 1024, 1);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
    EXPECT_GT(app->state_bytes(), 32u * 1024);
  }
  EXPECT_THROW(make_miniapp("nekbone", 1024, 1), std::runtime_error);
}

class MiniAppTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MiniAppTest, CheckpointRestoreRoundTrip) {
  auto app = make_miniapp(GetParam(), 128 * 1024, 99);
  for (int i = 0; i < 3; ++i) app->step();
  const auto digest = app->state_digest();
  const Bytes image = app->checkpoint();

  // Diverge, then restore: state must come back exactly.
  for (int i = 0; i < 2; ++i) app->step();
  EXPECT_NE(app->state_digest(), digest);
  app->restore(image);
  EXPECT_EQ(app->state_digest(), digest);
  EXPECT_EQ(app->step_count(), 3u);
}

TEST_P(MiniAppTest, DeterministicForSameSeed) {
  auto a = make_miniapp(GetParam(), 64 * 1024, 123);
  auto b = make_miniapp(GetParam(), 64 * 1024, 123);
  for (int i = 0; i < 3; ++i) {
    a->step();
    b->step();
  }
  EXPECT_EQ(a->state_digest(), b->state_digest());

  auto c = make_miniapp(GetParam(), 64 * 1024, 124);
  for (int i = 0; i < 3; ++i) c->step();
  EXPECT_NE(c->state_digest(), a->state_digest());
}

TEST_P(MiniAppTest, StateEvolvesEachStep) {
  auto app = make_miniapp(GetParam(), 64 * 1024, 5);
  auto prev = app->state_digest();
  for (int i = 0; i < 3; ++i) {
    app->step();
    const auto next = app->state_digest();
    EXPECT_NE(next, prev) << "step " << i;
    prev = next;
  }
}

TEST_P(MiniAppTest, CheckpointSizeTracksTarget) {
  const std::size_t target = 512 * 1024;
  auto app = make_miniapp(GetParam(), target, 3);
  const Bytes image = app->checkpoint();
  // Within a factor of two of the requested size (grid rounding).
  EXPECT_GT(image.size(), target / 2);
  EXPECT_LT(image.size(), target * 2);
}

INSTANTIATE_TEST_SUITE_P(AllApps, MiniAppTest,
                         ::testing::ValuesIn(miniapp_names()),
                         [](const auto& info) { return info.param; });

INSTANTIATE_TEST_SUITE_P(ProductionApps, MiniAppTest,
                         ::testing::ValuesIn(production_app_names()),
                         [](const auto& info) { return info.param; });

TEST(ProductionApps, CompressLikeTheirNamesakes) {
  // Section 5.2: LAMMPS checkpoints compress better than the mini-app
  // average (~92%), CTH around ~83%. Verify the proxies land high and in
  // the right order.
  const auto gzip1 = compress::make_codec("ngzip", 1);
  auto factor_of = [&](const std::string& name) {
    auto app = make_miniapp(name, 1 << 20, 3);
    app->step();
    const Bytes image = app->checkpoint();
    const Bytes packed = gzip1->compress(image);
    return compress::Codec::compression_factor(image.size(), packed.size());
  };
  const double lammps = factor_of("lammps");
  const double cth = factor_of("cth");
  EXPECT_GT(lammps, 0.8);
  EXPECT_GT(cth, 0.6);
  EXPECT_GT(lammps, cth);
}

TEST(MiniApps, CompressibilityOrderingMatchesTable2) {
  // The paper's Table 2 spread (gzip(1) factors): the CG-family apps and
  // comd compress well, minimd moderately, minismac worst. Verify the
  // proxies reproduce that ordering with our ngzip(1).
  const auto gzip1 = compress::make_codec("ngzip", 1);
  auto factor_of = [&](const std::string& name) {
    auto app = make_miniapp(name, 1 << 20, 11);
    app->step();
    const Bytes image = app->checkpoint();
    const Bytes packed = gzip1->compress(image);
    return compress::Codec::compression_factor(image.size(), packed.size());
  };
  const double comd = factor_of("comd");
  const double hpccg = factor_of("hpccg");
  const double minimd = factor_of("minimd");
  const double minismac = factor_of("minismac");

  EXPECT_GT(comd, 0.7);
  EXPECT_GT(hpccg, 0.75);
  EXPECT_GT(minimd, 0.35);
  EXPECT_LT(minimd, 0.75);
  EXPECT_LT(minismac, 0.45);
  EXPECT_GT(comd, minimd);
  EXPECT_GT(minimd, minismac);
}

class ProxyKernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProxyKernelTest, DeterministicAndResidualVerified) {
  auto a = make_proxy_kernel(GetParam(), 16 << 10, 7);
  auto b = make_proxy_kernel(GetParam(), 16 << 10, 7);
  for (int i = 0; i < 6; ++i) {
    a->iterate();
    b->iterate();
    ASSERT_TRUE(a->verify()) << GetParam() << " iteration " << a->iteration();
  }
  EXPECT_EQ(a->iteration(), 6u);
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  EXPECT_NE(make_proxy_kernel(GetParam(), 16 << 10, 8)->fingerprint(),
            a->fingerprint());
}

TEST_P(ProxyKernelTest, CaptureRestoreReplaysBitIdentically) {
  auto kernel = make_proxy_kernel(GetParam(), 16 << 10, 21);
  for (int i = 0; i < 3; ++i) kernel->iterate();
  const Bytes image = kernel->registry().capture();
  for (int i = 0; i < 3; ++i) kernel->iterate();
  const std::uint64_t final_fp = kernel->fingerprint();

  // Restore to iteration 3 and replay: bit-identical end state.
  kernel->registry().restore(ByteSpan(image));
  EXPECT_EQ(kernel->iteration(), 3u);
  for (int i = 0; i < 3; ++i) kernel->iterate();
  EXPECT_EQ(kernel->fingerprint(), final_fp);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ProxyKernelTest,
                         ::testing::ValuesIn(proxy_kernel_names()));

TEST(ProxyKernels, RegisteredWithTheMiniAppFactory) {
  for (const auto& name : proxy_kernel_names()) {
    const auto app = make_miniapp(name, 32 * 1024, 5);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
    const auto digest = app->state_digest();
    app->step();
    EXPECT_NE(app->state_digest(), digest);
    EXPECT_EQ(app->step_count(), 1u);
  }
}

}  // namespace
}  // namespace ndpcr::workloads
