#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "exec/task_pool.hpp"

namespace ndpcr::compress {
namespace {

Bytes test_data(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(16));
  return data;
}

TEST(Chunked, RoundTripsAcrossChunkBoundaries) {
  const ChunkedCodec codec(CodecId::kDeflateStyle, 1, /*chunk=*/10000);
  for (std::size_t size : {0u, 1u, 9999u, 10000u, 10001u, 35000u}) {
    const Bytes data = test_data(size, size + 1);
    const Bytes packed = codec.compress(data);
    EXPECT_EQ(codec.decompress(packed), data) << "size=" << size;
  }
}

TEST(Chunked, OutputIndependentOfThreadCount) {
  // Parallelism is an execution detail: the stream must be bit-identical
  // for any worker count.
  const Bytes data = test_data(200000, 7);
  const ChunkedCodec serial(CodecId::kLz4Style, 1, 16384, 1);
  const ChunkedCodec parallel(CodecId::kLz4Style, 1, 16384, 8);
  const Bytes a = serial.compress(data);
  const Bytes b = parallel.compress(data);
  EXPECT_EQ(a, b);
  EXPECT_EQ(parallel.decompress(a), data);
  EXPECT_EQ(serial.decompress(b), data);
}

TEST(Chunked, ParallelDecompressMatches) {
  const Bytes data = test_data(150000, 9);
  const ChunkedCodec codec(CodecId::kDeflateStyle, 1, 8192, 4);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(Chunked, ChunkingCostsLittleRatio) {
  // Chunked vs monolithic: same codec, modest ratio loss from per-chunk
  // framing and reset dictionaries.
  const Bytes data = test_data(256 * 1024, 11);
  const auto mono = make_codec(CodecId::kDeflateStyle, 1);
  const ChunkedCodec chunked(CodecId::kDeflateStyle, 1, 32768);
  const double mono_size = static_cast<double>(mono->compress(data).size());
  const double chunked_size =
      static_cast<double>(chunked.compress(data).size());
  EXPECT_LT(chunked_size, mono_size * 1.15);
}

TEST(Chunked, RejectsCorruptStreams) {
  const ChunkedCodec codec(CodecId::kLz4Style, 1, 4096);
  const Bytes data = test_data(20000, 13);
  Bytes packed = codec.compress(data);

  // Truncations.
  for (std::size_t cut : {0u, 5u, 17u, 40u}) {
    EXPECT_THROW((void)codec.decompress(ByteSpan(packed.data(), cut)),
                 CodecError);
  }
  EXPECT_THROW(
      (void)codec.decompress(ByteSpan(packed.data(), packed.size() - 1)),
      CodecError);
  // Payload corruption is caught by the inner per-chunk CRC.
  Bytes flipped = packed;
  flipped[flipped.size() - 10] ^= std::byte{0x40};
  EXPECT_THROW((void)codec.decompress(flipped), CodecError);
  // Wrong inner codec.
  const ChunkedCodec other(CodecId::kDeflateStyle, 1, 4096);
  EXPECT_THROW((void)other.decompress(packed), CodecError);
}

TEST(Chunked, ExceptionFromWorkerPropagates) {
  const ChunkedCodec codec(CodecId::kDeflateStyle, 1, 64, 4);
  const Bytes data = test_data(4096, 15);
  Bytes packed = codec.compress(data);
  // Corrupt a middle chunk: the parallel decompress must rethrow.
  packed[packed.size() / 2] ^= std::byte{0xFF};
  EXPECT_THROW((void)codec.decompress(packed), CodecError);
}

TEST(Chunked, InvalidConfigThrows) {
  EXPECT_THROW(ChunkedCodec(CodecId::kDeflateStyle, 1, 0), CodecError);
  EXPECT_THROW(ChunkedCodec(CodecId::kDeflateStyle, 0, 4096), CodecError);
}

TEST(Chunked, ChunkLevelInterfaceMatchesCompressBitExact) {
  // Caller-scheduled parallelism: per-chunk streams assembled in index
  // order must be the same bytes compress() produces.
  const ChunkedCodec codec(CodecId::kDeflateStyle, 1, 10000);
  for (std::size_t size : {0u, 1u, 10000u, 35000u}) {
    const Bytes data = test_data(size, size + 21);
    const std::size_t k = codec.chunk_count(size);
    EXPECT_EQ(k, (size + 9999) / 10000);
    std::vector<Bytes> chunks(k);
    std::size_t covered = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const auto [offset, length] = codec.chunk_extent(size, j);
      EXPECT_EQ(offset, covered);
      covered += length;
      chunks[j] = codec.compress_chunk(data, j);
    }
    EXPECT_EQ(covered, size);
    const Bytes assembled = codec.assemble(size, chunks);
    EXPECT_EQ(assembled, codec.compress(data)) << "size=" << size;
    EXPECT_EQ(ChunkedCodec::header_bytes(k) +
                  [&] {
                    std::size_t payload = 0;
                    for (const auto& c : chunks) payload += c.size();
                    return payload;
                  }(),
              assembled.size());
  }
  EXPECT_THROW((void)codec.chunk_extent(10000, 1), CodecError);
}

TEST(Chunked, CompressInsidePoolWorkerRunsInlineAndMatches) {
  // A TaskPool worker may not nest parallel_for; compress() must detect
  // that, run inline, and still produce identical bytes.
  const ChunkedCodec codec(CodecId::kLz4Style, 1, 8192, 8);
  const Bytes data = test_data(100000, 17);
  const Bytes outside = codec.compress(data);
  exec::TaskPool pool(4);
  std::vector<Bytes> inside(3);
  pool.parallel_for(inside.size(), [&](std::size_t i) {
    inside[i] = codec.compress(data);
    // Round-trip inside the worker too (decompress also degrades inline).
    if (codec.decompress(inside[i]) != data) inside[i].clear();
  });
  for (const Bytes& b : inside) EXPECT_EQ(b, outside);
}

}  // namespace
}  // namespace ndpcr::compress
