// Reference-implementation cross-checks: the optimized compression
// building blocks against naive-but-obviously-correct counterparts.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "common/rng.hpp"
#include "compress/huffman.hpp"
#include "compress/matcher.hpp"
#include "compress/suffix_array.hpp"

namespace ndpcr::compress {
namespace {

// Reference unlimited-depth Huffman cost via the classic two-queue/heap
// construction: the minimum achievable weighted code length.
std::uint64_t reference_huffman_cost(const std::vector<std::uint64_t>& freqs) {
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>> heap;
  for (auto f : freqs) {
    if (f > 0) heap.push(f);
  }
  if (heap.size() <= 1) return 0;
  std::uint64_t cost = 0;
  while (heap.size() > 1) {
    const auto a = heap.top();
    heap.pop();
    const auto b = heap.top();
    heap.pop();
    cost += a + b;
    heap.push(a + b);
  }
  return cost;
}

TEST(HuffmanReference, PackageMergeMatchesOptimalWhenDepthFits) {
  // With a generous depth limit the package-merge lengths must reach the
  // unconstrained optimum exactly.
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.next_below(40);
    std::vector<std::uint64_t> freqs(n);
    for (auto& f : freqs) f = rng.next_below(500);
    if (std::count_if(freqs.begin(), freqs.end(),
                      [](auto f) { return f > 0; }) < 2) {
      freqs[0] = 1;
      freqs[1] = 2;
    }
    const auto lengths = huffman_code_lengths(freqs, kMaxHuffmanBits);
    std::uint64_t cost = 0;
    for (std::size_t s = 0; s < n; ++s) {
      cost += freqs[s] * lengths[s];
    }
    EXPECT_EQ(cost, reference_huffman_cost(freqs)) << "trial " << trial;
  }
}

TEST(HuffmanReference, TightLimitCostsOnlySlightlyMore) {
  // Constrained codes may be worse than optimal but never better, and
  // within the theoretical bound of ~1 extra bit per symbol here.
  Rng rng(33);
  std::vector<std::uint64_t> freqs(64);
  std::uint64_t f = 1;
  for (auto& x : freqs) {
    x = f;
    f = f * 2 + 1;  // exponential: forces deep optimal codes
    if (f > (1ull << 40)) f = 1;
  }
  const auto limited = huffman_code_lengths(freqs, 8);
  std::uint64_t limited_cost = 0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    limited_cost += freqs[s] * limited[s];
    total += freqs[s];
  }
  const auto optimal = reference_huffman_cost(freqs);
  EXPECT_GE(limited_cost, optimal);
  EXPECT_LE(limited_cost, optimal + 2 * total);
}

// Naive longest-match search: scan every admissible previous position.
Match naive_longest_match(ByteSpan data, std::size_t pos,
                          std::uint32_t window, std::uint32_t min_match,
                          std::uint32_t max_match) {
  Match best;
  const std::size_t limit =
      std::min<std::size_t>(data.size() - pos, max_match);
  const std::size_t start = pos > window ? pos - window : 0;
  for (std::size_t cand = start; cand < pos; ++cand) {
    std::size_t len = 0;
    while (len < limit && data[cand + len] == data[pos + len]) ++len;
    if (len >= min_match && len > best.length) {
      best.length = static_cast<std::uint32_t>(len);
      best.distance = static_cast<std::uint32_t>(pos - cand);
    }
  }
  return best;
}

TEST(MatcherReference, DeepChainFindsTheLongestMatch) {
  // With an effectively unlimited chain the hash-chain finder must match
  // the naive scan's *length* at every position (distance may differ
  // among equal-length candidates).
  Rng rng(35);
  Bytes data(1500);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(4));

  MatchFinder finder(data, /*window=*/1 << 15, 4, 64, /*chain=*/100000);
  for (std::size_t pos = 0; pos + 4 <= data.size(); ++pos) {
    const Match fast = finder.find(pos);
    const Match slow = naive_longest_match(data, pos, 1 << 15, 4, 64);
    EXPECT_EQ(fast.length, slow.length) << "pos " << pos;
    if (fast.length > 0) {
      // Whatever it found must actually match.
      for (std::uint32_t i = 0; i < fast.length; ++i) {
        EXPECT_EQ(data[pos + i], data[pos - fast.distance + i]);
      }
    }
    finder.insert(pos);
  }
}

TEST(SuffixArrayReference, AgreesOnStressShapes) {
  // Shapes that historically break suffix-array implementations.
  const std::vector<std::string> shapes = {
      std::string(500, 'a'),                  // all equal
      "abababababababababababababab",         // period 2
      "aaaabaaaabaaaabaaaab",                  // runs + period
      "zyxwvutsrqponmlkjihgfedcba",            // strictly decreasing
      "abcabcabcabcabcabcabcabcabcx",          // period broken at the end
      std::string("\x00\x00\x01\x00\x00\x01\x00", 7),  // embedded zeros
  };
  for (const auto& s : shapes) {
    const Bytes data = to_bytes(s.data(), s.size());
    EXPECT_EQ(suffix_array(data), suffix_array_naive(data)) << s.substr(0, 8);
  }
}

}  // namespace
}  // namespace ndpcr::compress
