#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "common/rng.hpp"
#include "compress/bitstream.hpp"
#include "compress/bwt.hpp"
#include "compress/codec.hpp"
#include "compress/huffman.hpp"
#include "compress/matcher.hpp"
#include "compress/suffix_array.hpp"

namespace ndpcr::compress {
namespace {

Bytes from_string(const std::string& s) {
  return to_bytes(s.data(), s.size());
}

TEST(BitStream, RoundTripsMixedWidths) {
  Bytes buf;
  BitWriter bw(buf);
  bw.write(0b1, 1);
  bw.write(0b1010, 4);
  bw.write(0xABCD, 16);
  bw.write(0x1FFFFF, 21);
  bw.write(0, 0);
  bw.write(0xFFFFFFFF, 32);
  bw.finish();

  BitReader br(buf);
  EXPECT_EQ(br.read(1), 0b1u);
  EXPECT_EQ(br.read(4), 0b1010u);
  EXPECT_EQ(br.read(16), 0xABCDu);
  EXPECT_EQ(br.read(21), 0x1FFFFFu);
  EXPECT_EQ(br.read(0), 0u);
  EXPECT_EQ(br.read(32), 0xFFFFFFFFu);
}

TEST(BitStream, ReadPastEndThrows) {
  Bytes buf;
  BitWriter bw(buf);
  bw.write(0x5, 3);
  bw.finish();
  BitReader br(buf);
  br.read(8);  // the padded byte
  EXPECT_THROW(br.read(1), CodecError);
}

TEST(BitStream, PeekDoesNotConsume) {
  Bytes buf;
  BitWriter bw(buf);
  bw.write(0xE5, 8);
  bw.finish();
  BitReader br(buf);
  EXPECT_EQ(br.peek(4), 0x5u);
  EXPECT_EQ(br.peek(4), 0x5u);
  br.consume(4);
  EXPECT_EQ(br.read(4), 0xEu);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  std::vector<std::uint64_t> freqs = {50, 30, 10, 5, 3, 1, 1};
  const auto lengths = huffman_code_lengths(freqs);
  double kraft = 0;
  for (auto l : lengths) {
    ASSERT_GT(l, 0);
    ASSERT_LE(l, kMaxHuffmanBits);
    kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_DOUBLE_EQ(kraft, 1.0);  // optimal codes are complete
}

TEST(Huffman, SkewedFrequenciesRespectLengthLimit) {
  // Exponentially exploding frequencies force long codes without a limit.
  std::vector<std::uint64_t> freqs(30);
  std::uint64_t f = 1;
  for (auto& x : freqs) {
    x = f;
    f *= 3;
  }
  const auto lengths = huffman_code_lengths(freqs, 8);
  for (auto l : lengths) {
    EXPECT_GT(l, 0);
    EXPECT_LE(l, 8);
  }
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 7;
  const auto lengths = huffman_code_lengths(freqs);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(lengths[i], i == 4 ? 1 : 0);
  }
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  Rng rng(11);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = 1 + rng.next_below(1000);
  const HuffmanEncoder enc(huffman_code_lengths(freqs));
  const HuffmanDecoder dec(enc.lengths());

  std::vector<std::uint32_t> symbols(5000);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.next_below(64));

  Bytes buf;
  BitWriter bw(buf);
  for (auto s : symbols) enc.encode(bw, s);
  bw.finish();

  BitReader br(buf);
  for (auto s : symbols) {
    EXPECT_EQ(dec.decode(br), s);
  }
}

TEST(Huffman, OptimalityAgainstShannonBound) {
  // Average code length must be within 1 bit of the entropy.
  std::vector<std::uint64_t> freqs = {1000, 500, 250, 125, 60, 30, 20, 15};
  const auto lengths = huffman_code_lengths(freqs);
  const double total = std::accumulate(freqs.begin(), freqs.end(), 0.0);
  double avg_len = 0;
  double entropy = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double p = freqs[i] / total;
    avg_len += p * lengths[i];
    entropy -= p * std::log2(p);
  }
  EXPECT_GE(avg_len, entropy - 1e-9);
  EXPECT_LE(avg_len, entropy + 1.0);
}

TEST(Huffman, DecoderRejectsInvalidLengthTable) {
  // Over-subscribed: three symbols of length 1.
  std::vector<std::uint8_t> bad = {1, 1, 1};
  EXPECT_THROW(HuffmanDecoder dec(bad), CodecError);
}

TEST(SuffixArray, MatchesNaiveOnKnownString) {
  const Bytes s = from_string("banana");
  const auto sa = suffix_array(s);
  const auto expected = suffix_array_naive(s);
  EXPECT_EQ(sa, expected);
  // banana suffixes sorted: a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  EXPECT_EQ(sa, (std::vector<std::int32_t>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, MatchesNaiveOnRandomInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    Bytes s(n);
    const int alphabet = trial % 2 ? 256 : 3;  // small alphabets stress ties
    for (auto& b : s) {
      b = static_cast<std::byte>(rng.next_below(alphabet));
    }
    EXPECT_EQ(suffix_array(s), suffix_array_naive(s)) << "trial " << trial;
  }
}

TEST(SuffixArray, EmptyAndSingle) {
  EXPECT_TRUE(suffix_array({}).empty());
  const Bytes one = from_string("x");
  EXPECT_EQ(suffix_array(one), (std::vector<std::int32_t>{0}));
}

TEST(Bwt, KnownTransform) {
  // BWT round trip on the classic example.
  const Bytes s = from_string("abracadabra");
  const BwtResult r = bwt_forward(s);
  EXPECT_EQ(r.data.size(), s.size());
  EXPECT_EQ(bwt_inverse(r.data, r.primary_index), s);
}

TEST(Bwt, GroupsRuns) {
  // BWT of repetitive text should contain long single-byte runs.
  std::string text;
  for (int i = 0; i < 100; ++i) text += "the quick brown fox ";
  const BwtResult r = bwt_forward(from_string(text));
  std::size_t longest_run = 1;
  std::size_t run = 1;
  for (std::size_t i = 1; i < r.data.size(); ++i) {
    run = (r.data[i] == r.data[i - 1]) ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_GE(longest_run, 50u);
}

TEST(Bwt, RoundTripRandom) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.next_below(2000);
    Bytes s(n);
    for (auto& b : s) b = static_cast<std::byte>(rng.next_below(5));
    const BwtResult r = bwt_forward(s);
    EXPECT_EQ(bwt_inverse(r.data, r.primary_index), s);
  }
}

TEST(Bwt, InverseRejectsBadPrimaryIndex) {
  const BwtResult r = bwt_forward(from_string("hello world"));
  EXPECT_THROW(bwt_inverse(r.data, 0), CodecError);
  EXPECT_THROW(bwt_inverse(r.data,
                           static_cast<std::uint32_t>(r.data.size() + 1)),
               CodecError);
}

TEST(Matcher, FindsObviousMatch) {
  const Bytes s = from_string("abcdefgh_abcdefgh");
  MatchFinder finder(s, 1 << 16, 4, 255, 16);
  for (std::size_t i = 0; i < 9; ++i) finder.insert(i);
  const Match m = finder.find(9);
  EXPECT_EQ(m.length, 8u);
  EXPECT_EQ(m.distance, 9u);
}

TEST(Matcher, RespectsWindow) {
  Bytes s = from_string("abcd");
  s.resize(1000, std::byte{'x'});
  Bytes tail = from_string("abcd");
  s.insert(s.end(), tail.begin(), tail.end());
  MatchFinder finder(s, /*window=*/100, 4, 255, 64);
  for (std::size_t i = 0; i < 1004; ++i) finder.insert(i);
  const Match m = finder.find(1004);  // "abcd" at distance 1004 > window
  EXPECT_EQ(m.length, 0u);
}

TEST(Matcher, NoMatchOnUniqueData) {
  Bytes s(64);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<std::byte>(i * 37 + 11);
  }
  MatchFinder finder(s, 1 << 16, 4, 255, 16);
  for (std::size_t i = 0; i < 32; ++i) finder.insert(i);
  EXPECT_EQ(finder.find(32).length, 0u);
}

TEST(Codec, FactoryCreatesAllCodecs) {
  for (const auto& spec : paper_codec_suite()) {
    const auto codec = make_codec(spec.id, spec.level);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->level(), spec.level);
  }
  EXPECT_EQ(make_codec("null", 0)->name(), "null");
  EXPECT_EQ(make_codec("rle", 1)->name(), "rle");
  EXPECT_THROW(make_codec("zstd", 1), CodecError);
  EXPECT_THROW(make_codec(CodecId::kDeflateStyle, 0), CodecError);
  EXPECT_THROW(make_codec(CodecId::kDeflateStyle, 10), CodecError);
}

TEST(Codec, FrameRejectsWrongCodec) {
  const auto gz = make_codec("ngzip", 1);
  const auto lz = make_codec("nlz4", 1);
  const Bytes data = from_string("some data to compress, repeated repeated");
  const Bytes framed = gz->compress(data);
  EXPECT_THROW(lz->decompress(framed), CodecError);
}

TEST(Codec, FrameRejectsTruncation) {
  const auto gz = make_codec("ngzip", 1);
  const Bytes framed = gz->compress(from_string("hello hello hello hello"));
  const ByteSpan too_short(framed.data(), kFrameHeaderSize - 1);
  EXPECT_THROW(gz->decompress(too_short), CodecError);
}

TEST(Codec, FrameDetectsPayloadCorruption) {
  const auto lz = make_codec("nlz4", 1);
  Bytes data(4096);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(16));
  Bytes framed = lz->compress(data);
  // Flip one payload byte; decompress must throw rather than return
  // silently corrupted data.
  framed[framed.size() / 2] ^= std::byte{0x10};
  EXPECT_THROW(lz->decompress(framed), CodecError);
}

TEST(Codec, CompressionFactorDefinition) {
  EXPECT_DOUBLE_EQ(Codec::compression_factor(100, 25), 0.75);
  EXPECT_DOUBLE_EQ(Codec::compression_factor(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(Codec::compression_factor(0, 10), 0.0);
  EXPECT_LT(Codec::compression_factor(100, 120), 0.0);  // expansion
}

TEST(Codec, RatioOrderingOnCompressibleData) {
  // On repetitive text the stronger family should not lose to the faster
  // one: nxz(6) <= ngzip(6) <= nlz4(1) in compressed size.
  std::string text;
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    text += "step=" + std::to_string(i) + " residual=" +
            std::to_string(rng.next_double()) + " iter converged\n";
  }
  const Bytes data = from_string(text);
  const auto lz4_size = make_codec("nlz4", 1)->compress(data).size();
  const auto gzip_size = make_codec("ngzip", 6)->compress(data).size();
  const auto xz_size = make_codec("nxz", 6)->compress(data).size();
  EXPECT_LT(gzip_size, lz4_size);
  EXPECT_LE(xz_size, gzip_size);
  EXPECT_LT(lz4_size, data.size() / 2);
}

}  // namespace
}  // namespace ndpcr::compress
