// The pipelined commit path (docs/PERF.md): the async double-buffered
// store writer and the online codec selection must both be execution
// details. Stored bytes, recovery results and every health counter are
// pinned bit-identical writer-on vs writer-off, across pool sizes 1/2/8,
// clean and under a seeded fault schedule, for full, delta and dedup
// commit flavors.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "ckpt/store_writer.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_stores.hpp"

namespace ndpcr::ckpt {
namespace {

// ---------------------------------------------------------------------------
// AsyncStageWriter unit behavior: FIFO order, flush barrier, error
// propagation, inline depth-0 mode.

TEST(AsyncStageWriter, RunsJobsInSubmissionOrder) {
  AsyncStageWriter writer(2);
  std::vector<int> order;  // written only from writer jobs, read post-flush
  for (int i = 0; i < 32; ++i) {
    writer.submit([&order, i] { order.push_back(i); });
  }
  writer.flush();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(writer.stats().jobs, 32u);
  EXPECT_EQ(writer.stats().inline_jobs, 0u);
  EXPECT_EQ(writer.stats().flushes, 1u);
  EXPECT_LE(writer.stats().queue_peak, 3u);  // depth 2 staged + 1 in flight
}

TEST(AsyncStageWriter, DepthZeroRunsInline) {
  AsyncStageWriter writer(0);
  int ran = 0;
  writer.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // before any flush: submit itself ran the job
  writer.flush();
  EXPECT_EQ(writer.stats().inline_jobs, 1u);
}

TEST(AsyncStageWriter, FlushRethrowsFirstJobError) {
  AsyncStageWriter writer(2);
  std::atomic<int> later{0};
  writer.submit([] { throw std::runtime_error("boom"); });
  writer.submit([&later] { ++later; });
  EXPECT_THROW(writer.flush(), std::runtime_error);
  EXPECT_EQ(later.load(), 1);  // independent jobs still ran
  writer.flush();              // error consumed: the barrier is clean again
}

TEST(AsyncStageWriter, DestructorDrainsPendingJobs) {
  std::vector<int> order;
  {
    AsyncStageWriter writer(4);
    for (int i = 0; i < 8; ++i) {
      writer.submit([&order, i] { order.push_back(i); });
    }
  }  // no flush: the destructor must run everything before joining
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// End-to-end pipeline equivalence on the multilevel data path.

struct PathResult {
  std::vector<std::uint64_t> ids;
  std::vector<Bytes> io_bytes;  // per rank, newest id's stored container
  std::uint64_t recovered_id = 0;
  std::vector<Bytes> recovered;
  std::uint32_t health_fp = 0;
  PipelineStats pipeline;
};

struct PathOptions {
  unsigned pool_threads = 1;
  std::size_t writer_depth = 2;
  bool adaptive = false;
  bool with_delta = false;
  bool with_dedup = false;
  bool with_faults = false;
};

PathResult run_path(const PathOptions& opt) {
  exec::TaskPool pool(opt.pool_threads);
  MultilevelConfig mc;
  mc.node_count = 4;
  mc.nvm_capacity_bytes = 1 << 20;
  mc.partner_every = 2;
  mc.io_every = 1;
  mc.io_chunk_bytes = 2048;
  mc.io_threads = 0;
  mc.io_writer_depth = opt.writer_depth;
  mc.pool = &pool;
  if (opt.adaptive) {
    mc.io_codec_adaptive = true;  // io_codec stays kNull: probe decides
  } else {
    mc.io_codec = compress::CodecId::kLz4Style;
    mc.io_codec_level = 1;
  }
  if (opt.with_delta) {
    mc.delta.enabled = true;
    mc.delta.chain_length = 3;
  }
  if (opt.with_dedup) mc.delta.io_dedup = true;
  if (opt.with_faults) {
    auto plan = std::make_shared<faults::FaultPlan>(
        4242, faults::FaultRates{0.05, 0.03, 0.02, 0.02});
    mc.store_factory = [plan](StoreLevel level, std::uint32_t host)
        -> std::unique_ptr<KvStore> {
      const faults::Target target = level == StoreLevel::kIo
                                        ? faults::io_target()
                                        : faults::partner_target(host);
      return std::make_unique<faults::FaultyKvStore>(plan, target);
    };
    mc.local_write_hook = faults::make_local_write_hook(plan, nullptr);
  }
  MultilevelManager manager(mc);

  PathResult out;
  Rng rng(2026);
  Bytes base(24000);
  for (auto& b : base) b = static_cast<std::byte>(rng.next_below(11));
  for (int i = 0; i < 6; ++i) {
    // Mostly-stable payloads so delta/dedup flavors genuinely engage.
    std::vector<Bytes> payloads;
    for (std::uint32_t r = 0; r < mc.node_count; ++r) {
      Bytes p = base;
      for (int k = 0; k < 40; ++k) {
        p[(i * 131 + k * 97 + r) % p.size()] =
            static_cast<std::byte>(rng.next_below(256));
      }
      payloads.push_back(std::move(p));
    }
    const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    out.ids.push_back(manager.commit(views));
  }
  for (std::uint32_t r = 0; r < mc.node_count; ++r) {
    const auto got = manager.io_store().get(r, out.ids.back());
    out.io_bytes.push_back(got.ok() ? *got : Bytes{});
  }
  if (const auto rec = manager.recover()) {
    out.recovered_id = rec->checkpoint_id;
    out.recovered = rec->payloads;
  }
  out.health_fp = faults::health_fingerprint(manager.health());
  out.pipeline = manager.pipeline();
  return out;
}

void expect_equal(const PathResult& a, const PathResult& b,
                  const char* what) {
  EXPECT_EQ(a.ids, b.ids) << what;
  EXPECT_EQ(a.io_bytes, b.io_bytes) << what;
  EXPECT_EQ(a.recovered_id, b.recovered_id) << what;
  EXPECT_EQ(a.recovered, b.recovered) << what;
  EXPECT_EQ(a.health_fp, b.health_fp) << what;
}

TEST(PipelinedCommit, WriterOnOffBitIdentical) {
  // The async writer is pure overlap: depth 0 (inline) and depth 2
  // (double-buffered) must produce identical stores, recovery and health,
  // for every commit flavor, clean and faulted.
  for (const bool faults : {false, true}) {
    for (int flavor = 0; flavor < 3; ++flavor) {
      PathOptions on;
      on.with_faults = faults;
      on.with_delta = flavor >= 1;
      on.with_dedup = flavor == 2;
      PathOptions off = on;
      off.writer_depth = 0;
      const PathResult a = run_path(on);
      const PathResult b = run_path(off);
      expect_equal(a, b, faults ? "faulted" : "clean");
      // Depth 0 never starts the writer thread; all jobs counted inline.
      EXPECT_EQ(b.pipeline.inline_jobs, b.pipeline.jobs);
    }
  }
}

TEST(PipelinedCommit, AdaptiveCodecThreadAndWriterInvariant) {
  PathOptions base_opt;
  base_opt.adaptive = true;
  const PathResult base = run_path(base_opt);
  // The probe actually engaged: streams decode as chunked containers.
  ASSERT_FALSE(base.io_bytes.empty());
  const auto header = compress::ChunkedCodec::peek(ByteSpan(base.io_bytes[0]));
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(base.recovered_id, base.ids.back());
  for (unsigned threads : {2u, 8u}) {
    PathOptions opt = base_opt;
    opt.pool_threads = threads;
    expect_equal(run_path(opt), base, "threads");
  }
  PathOptions inline_opt = base_opt;
  inline_opt.writer_depth = 0;
  expect_equal(run_path(inline_opt), base, "writer off");
}

TEST(PipelinedCommit, AdaptiveSurvivesFaultsAcrossPools) {
  PathOptions opt;
  opt.adaptive = true;
  opt.with_faults = true;
  opt.with_delta = true;
  const PathResult base = run_path(opt);
  for (unsigned threads : {2u, 8u}) {
    PathOptions o = opt;
    o.pool_threads = threads;
    expect_equal(run_path(o), base, "faulted threads");
  }
}

TEST(PipelinedCommit, PipelineStatsObserveTheWriter) {
  PathOptions opt;  // defaults: static nlz4, writer depth 2
  const PathResult r = run_path(opt);
  // 6 commits x 4 ranks of IO puts rode the pipeline, plus recover's
  // decode stage; at least the commit-side jobs are exact.
  EXPECT_GE(r.pipeline.jobs, 24u);
  EXPECT_GE(r.pipeline.flushes, 6u);
  EXPECT_EQ(r.pipeline.inline_jobs, 0u);
}

}  // namespace
}  // namespace ndpcr::ckpt
