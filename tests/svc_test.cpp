#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "exec/task_pool.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"
#include "svc/svc_chaos.hpp"

namespace ndpcr::svc {
namespace {

Bytes pattern(std::size_t size, std::uint8_t fill) {
  return Bytes(size, std::byte{fill});
}

std::vector<ByteSpan> spans(const std::vector<Bytes>& payloads) {
  return {payloads.begin(), payloads.end()};
}

// ---------------------------------------------------------------------------
// SCR-style session API: latest-pointer semantics and restart.

TEST(SvcSession, LatestPointerAdvancesOnlyAtCommit) {
  CheckpointService service(SvcConfig{});
  TenantSpec spec;
  spec.ranks = 2;
  Session& s = service.open_session(std::move(spec));

  EXPECT_EQ(s.commit(), SvcStatus::kNoCheckpoint);
  EXPECT_FALSE(s.restart().has_value());

  const std::vector<Bytes> wave1{pattern(500, 0x1), pattern(300, 0x2)};
  ASSERT_EQ(s.start_checkpoint(spans(wave1)), SvcStatus::kQueued);
  // Staged, not committed: the latest-pointer must not move yet.
  EXPECT_EQ(s.latest(), 0u);
  EXPECT_EQ(s.pending_jobs(), 1u);
  EXPECT_EQ(s.commit(), SvcStatus::kOk);
  EXPECT_EQ(s.latest(), 1u);
  EXPECT_EQ(s.stats().committed, 1u);
  EXPECT_EQ(s.stats().committed_bytes, 800u);

  const std::vector<Bytes> wave2{pattern(500, 0x3), pattern(300, 0x4)};
  ASSERT_EQ(s.start_checkpoint(spans(wave2)), SvcStatus::kQueued);
  ASSERT_EQ(s.commit(), SvcStatus::kOk);
  EXPECT_EQ(s.latest(), 2u);

  const auto restart = s.restart();
  ASSERT_TRUE(restart.has_value());
  EXPECT_EQ(restart->checkpoint_id, 2u);
  ASSERT_EQ(restart->payloads.size(), 2u);
  EXPECT_EQ(restart->payloads[0], wave2[0]);
  EXPECT_EQ(restart->payloads[1], wave2[1]);
}

TEST(SvcSession, ValidatesPayloadCountAndRankRange) {
  CheckpointService service(SvcConfig{});
  TenantSpec spec;
  spec.ranks = 2;
  Session& s = service.open_session(std::move(spec));
  const std::vector<Bytes> one{pattern(100, 0x1)};
  EXPECT_THROW((void)s.start_checkpoint(spans(one)), std::invalid_argument);

  TenantSpec zero;
  zero.ranks = 0;
  EXPECT_THROW(service.open_session(std::move(zero)), std::invalid_argument);
  TenantSpec wide;
  wide.ranks = ckpt::kTenantSubSlotStride;
  EXPECT_THROW(service.open_session(std::move(wide)), std::invalid_argument);
}

TEST(SvcSession, TenantsShareDevicesWithoutCollisions) {
  // Two tenants, identical rank/id keys: both live on the shared IO and
  // partner devices yet each restarts its own bytes.
  CheckpointService service(SvcConfig{});
  Session& a = service.open_session(TenantSpec{});
  Session& b = service.open_session(TenantSpec{});
  const std::vector<Bytes> pa{pattern(400, 0xAA)};
  const std::vector<Bytes> pb{pattern(400, 0xBB)};
  ASSERT_EQ(a.start_checkpoint(spans(pa)), SvcStatus::kQueued);
  ASSERT_EQ(b.start_checkpoint(spans(pb)), SvcStatus::kQueued);
  service.drain();
  EXPECT_EQ(a.latest(), 1u);
  EXPECT_EQ(b.latest(), 1u);
  EXPECT_EQ(a.restart()->payloads[0], pa[0]);
  EXPECT_EQ(b.restart()->payloads[0], pb[0]);
}

// ---------------------------------------------------------------------------
// Quotas: the admission gate and the store seam.

TEST(SvcQuota, ExhaustedOpGrantIsRefusedAtAdmission) {
  CheckpointService service(SvcConfig{});
  TenantSpec spec;
  spec.qos.quota_ops = 2;  // an IO grant of two operations
  Session& s = service.open_session(std::move(spec));

  // Commit until the grant is spent; admission must then refuse with
  // kDeniedQuota (typed, no exception) while restart keeps working.
  const std::vector<Bytes> payload{pattern(600, 0x5)};
  SvcStatus status = SvcStatus::kQueued;
  int commits = 0;
  for (; commits < 10; ++commits) {
    status = s.start_checkpoint(spans(payload));
    if (status != SvcStatus::kQueued) break;
    s.commit();
  }
  EXPECT_EQ(status, SvcStatus::kDeniedQuota);
  EXPECT_GT(commits, 0);
  EXPECT_GE(s.stats().denied_quota, 1u);
  EXPECT_FALSE(s.need_checkpoint(600));
  EXPECT_TRUE(s.quota().exhausted());
  const auto restart = s.restart();
  ASSERT_TRUE(restart.has_value());
  EXPECT_EQ(restart->checkpoint_id, s.latest());
}

TEST(SvcQuota, SeamDenialDegradesIoAndCommitsContinue) {
  CheckpointService service(SvcConfig{});
  TenantSpec spec;
  // Room for roughly one checkpoint image on IO, then the seam denies.
  spec.qos.quota_bytes = 1200;
  Session& s = service.open_session(std::move(spec));

  const std::vector<Bytes> payload{pattern(900, 0x6)};
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  EXPECT_EQ(s.commit(), SvcStatus::kOk);

  // Second checkpoint: the IO put exceeds the grant's remaining bytes,
  // the typed permanent error degrades the IO level, and the commit
  // still lands on the surviving levels.
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  EXPECT_EQ(s.commit(), SvcStatus::kDegraded);
  EXPECT_EQ(s.latest(), 2u);
  EXPECT_GE(s.quota().write_denials, 1u);
  EXPECT_TRUE(s.manager().health().any_degraded());
  const auto restart = s.restart();
  ASSERT_TRUE(restart.has_value());
  EXPECT_EQ(restart->checkpoint_id, 2u);
  EXPECT_EQ(restart->payloads[0], payload[0]);
}

// ---------------------------------------------------------------------------
// Backpressure: soft throttling and the hard watermark.

SvcConfig tight_nvm_config() {
  SvcConfig cfg;
  cfg.per_rank_nvm_bytes = 64 << 10;
  cfg.shared_nvm_bytes = 4000;  // tiny aggregate budget
  cfg.soft_fraction = 0.25;     // soft watermark at 1000 bytes
  cfg.hard_fraction = 0.75;     // hard watermark at 3000 bytes
  cfg.degrade_factor = 3;
  return cfg;
}

TEST(SvcBackpressure, SoftWatermarkThrottlesToLowerFrequency) {
  CheckpointService service(tight_nvm_config());
  Session& s = service.open_session(TenantSpec{});
  const std::vector<Bytes> payload{pattern(800, 0x7)};

  // First checkpoint: below the soft watermark, clean admit.
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  s.commit();

  // Resident NVM (~800B + image header) now projects past the soft
  // watermark: the next admit succeeds but arms the throttle, and the
  // following degrade_factor - 1 = 2 attempts are refused.
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  s.commit();
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kThrottled);
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kThrottled);
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  s.commit();
  EXPECT_EQ(s.stats().throttled, 2u);
  EXPECT_EQ(s.latest(), 3u);
}

TEST(SvcBackpressure, HardWatermarkDeniesOutright) {
  CheckpointService service(tight_nvm_config());
  Session& s = service.open_session(TenantSpec{});
  // A single staged checkpoint whose projected residency clears the hard
  // watermark (3000 bytes) is denied, stages nothing, and need_checkpoint
  // previews the same answer without advancing any state.
  const std::vector<Bytes> big{pattern(3500, 0x8)};
  EXPECT_FALSE(s.need_checkpoint(3500));
  EXPECT_EQ(s.start_checkpoint(spans(big)), SvcStatus::kDeniedBackpressure);
  EXPECT_EQ(s.pending_jobs(), 0u);
  EXPECT_EQ(s.stats().denied_backpressure, 1u);
  EXPECT_EQ(s.stats().accepted, 0u);
  // A small one still fits.
  EXPECT_TRUE(s.need_checkpoint(500));
  const std::vector<Bytes> small{pattern(500, 0x9)};
  EXPECT_EQ(s.start_checkpoint(spans(small)), SvcStatus::kQueued);
}

TEST(SvcBackpressure, PreviewDoesNotAdvanceThrottleState) {
  CheckpointService service(tight_nvm_config());
  Session& s = service.open_session(TenantSpec{});
  const std::vector<Bytes> payload{pattern(800, 0xA)};
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  s.commit();
  ASSERT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  s.commit();
  // Throttle armed. Previews in the throttle band report false but must
  // not consume the skip counter...
  EXPECT_FALSE(s.need_checkpoint(800));
  EXPECT_FALSE(s.need_checkpoint(800));
  EXPECT_FALSE(s.need_checkpoint(800));
  // ...so the real attempts still see exactly two refusals.
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kThrottled);
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kThrottled);
  EXPECT_EQ(s.start_checkpoint(spans(payload)), SvcStatus::kQueued);
}

// ---------------------------------------------------------------------------
// Fair-share scheduling: QoS weights shift shared-IO throughput.

TEST(SvcScheduler, WeightsShiftSharedIoThroughput) {
  SvcConfig cfg;
  cfg.scheduler_quantum = 1024;  // one weight-1 checkpoint per round
  CheckpointService service(cfg);
  TenantSpec starved;
  starved.qos.weight = 1;
  TenantSpec favored;
  favored.qos.weight = 4;
  Session& lo = service.open_session(std::move(starved));
  Session& hi = service.open_session(std::move(favored));

  // Both tenants stage 20 equal checkpoints (cost 1024 = one quantum).
  const std::vector<Bytes> payload{pattern(1024, 0xB)};
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(lo.start_checkpoint(spans(payload)), SvcStatus::kQueued);
    ASSERT_EQ(hi.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  }

  // Deficit round robin, exact arithmetic: per round the weight-1 tenant
  // earns one checkpoint's deficit, the weight-4 tenant four. After 4
  // contended rounds the committed counts sit at exactly 1:4.
  for (int round = 0; round < 4; ++round) service.pump_round();
  EXPECT_EQ(lo.stats().committed, 4u);
  EXPECT_EQ(hi.stats().committed, 16u);
  // The shared-IO byte split matches the weights while contended.
  const auto lo_io = lo.manager().data_path().io_bytes_written;
  const auto hi_io = hi.manager().data_path().io_bytes_written;
  EXPECT_EQ(hi_io, 4 * lo_io);
  // Weight-normalized fairness is perfect mid-contention; raw is not.
  EXPECT_DOUBLE_EQ(service.jain_io_weighted(), 1.0);
  EXPECT_LT(service.jain_io(), 0.8);

  // The starved tenant pays in queueing latency on the virtual clock.
  service.drain();
  EXPECT_EQ(lo.stats().committed, 20u);
  EXPECT_EQ(hi.stats().committed, 20u);
  EXPECT_GT(lo.commit_latency().p99(), hi.commit_latency().p99());
  // Fully drained, equal work: the raw index recovers to ~1.
  EXPECT_GT(service.jain_io(), 0.99);
}

TEST(SvcScheduler, LightTenantsProgressEveryRound) {
  // Work conservation: a weight-1 tenant behind a weight-8 neighbor
  // still commits at least one checkpoint per round once its deficit
  // covers one job - DRR shares, it does not starve.
  SvcConfig cfg;
  cfg.scheduler_quantum = 512;
  CheckpointService service(cfg);
  TenantSpec light;
  light.qos.weight = 1;
  TenantSpec heavy;
  heavy.qos.weight = 8;
  Session& lo = service.open_session(std::move(light));
  Session& hi = service.open_session(std::move(heavy));
  const std::vector<Bytes> payload{pattern(512, 0xC)};
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(lo.start_checkpoint(spans(payload)), SvcStatus::kQueued);
    ASSERT_EQ(hi.start_checkpoint(spans(payload)), SvcStatus::kQueued);
  }
  std::uint64_t lo_last = 0;
  for (int round = 0; round < 3; ++round) {
    service.pump_round();
    EXPECT_GT(lo.stats().committed, lo_last);
    lo_last = lo.stats().committed;
  }
}

// ---------------------------------------------------------------------------
// Determinism and isolation: the service fingerprint contract.

SvcChaosConfig chaos_config(std::uint64_t seed, bool faults,
                            exec::TaskPool* pool) {
  SvcChaosConfig cfg;
  cfg.seed = seed;
  cfg.tenants = 24;
  cfg.waves = 5;
  cfg.faults = faults;
  cfg.pool = pool;
  return cfg;
}

TEST(SvcDeterminism, FingerprintsPoolInvariantClean) {
  exec::TaskPool p1(1);
  const SvcChaosReport base = run_svc_chaos(chaos_config(11, false, &p1));
  EXPECT_EQ(base.violations, 0u);
  EXPECT_GT(base.committed, 0u);
  for (const std::size_t threads : {2ul, 8ul}) {
    exec::TaskPool pool(threads);
    const SvcChaosReport r = run_svc_chaos(chaos_config(11, false, &pool));
    EXPECT_EQ(r.fingerprint, base.fingerprint) << threads << " threads";
    EXPECT_EQ(r.service_fingerprint, base.service_fingerprint);
    EXPECT_EQ(r.tenant_fingerprints, base.tenant_fingerprints);
  }
}

TEST(SvcDeterminism, FingerprintsPoolInvariantUnderFaults) {
  exec::TaskPool p1(1);
  const SvcChaosReport base = run_svc_chaos(chaos_config(12, true, &p1));
  EXPECT_EQ(base.violations, 0u);
  EXPECT_GT(base.fault_injections, 0u);
  EXPECT_GT(base.restored, 0u);
  for (const std::size_t threads : {2ul, 8ul}) {
    exec::TaskPool pool(threads);
    const SvcChaosReport r = run_svc_chaos(chaos_config(12, true, &pool));
    EXPECT_EQ(r.fingerprint, base.fingerprint) << threads << " threads";
    EXPECT_EQ(r.service_fingerprint, base.service_fingerprint);
    EXPECT_EQ(r.tenant_fingerprints, base.tenant_fingerprints);
  }
}

TEST(SvcIsolation, CleanTenantsUnaffectedByNeighborFaults) {
  // The isolation property: tenant fingerprints of the clean (even-id)
  // tenants must be bit-identical between a run with no faults anywhere
  // and a run where every odd tenant is under a seeded fault plan.
  exec::TaskPool pool(4);
  const SvcChaosReport clean = run_svc_chaos(chaos_config(13, false, &pool));
  const SvcChaosReport faulted = run_svc_chaos(chaos_config(13, true, &pool));
  EXPECT_EQ(clean.violations, 0u);
  EXPECT_EQ(faulted.violations, 0u);
  EXPECT_GT(faulted.fault_injections, 0u);
  ASSERT_EQ(clean.tenant_fingerprints.size(),
            faulted.tenant_fingerprints.size());
  bool any_odd_differs = false;
  for (std::size_t t = 0; t < clean.tenant_fingerprints.size(); ++t) {
    if (t % 2 == 0) {
      EXPECT_EQ(clean.tenant_fingerprints[t], faulted.tenant_fingerprints[t])
          << "clean tenant " << t << " was perturbed by neighbor faults";
    } else if (clean.tenant_fingerprints[t] !=
               faulted.tenant_fingerprints[t]) {
      any_odd_differs = true;
    }
  }
  // Sanity: the faulted half did actually take different paths.
  EXPECT_TRUE(any_odd_differs);
}

TEST(SvcChaos, InvariantsHoldAcrossSeeds) {
  exec::TaskPool pool(4);
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    SvcChaosConfig cfg = chaos_config(seed, true, &pool);
    const SvcChaosReport r = run_svc_chaos(cfg);
    EXPECT_EQ(r.violations, 0u) << "seed " << seed
                                << (r.violation_notes.empty()
                                        ? ""
                                        : ": " + r.violation_notes.front());
    EXPECT_GT(r.committed, 0u) << "seed " << seed;
    EXPECT_EQ(r.restored + r.no_checkpoint, r.restarts) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Observability: fairness and latency surfaced through the registry.

TEST(SvcMetrics, ExportsFairnessLatencyAndPerTenantCounters) {
  exec::TaskPool pool(2);
  obs::MetricsRegistry metrics;
  SvcChaosConfig cfg = chaos_config(17, true, &pool);
  cfg.metrics = &metrics;
  const SvcChaosReport r = run_svc_chaos(cfg);
  ASSERT_EQ(r.violations, 0u);

  EXPECT_EQ(metrics.counter("svc.chaos.committed").value(), r.committed);
  EXPECT_GT(metrics.counter("svc.t0000.commits").value(), 0u);
  EXPECT_GT(metrics.counter("svc.t0000.io_bytes").value(), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("svc.fairness.jain_io").value(), r.jain_io);
  EXPECT_DOUBLE_EQ(metrics.gauge("svc.fairness.jain_io_weighted").value(),
                   r.jain_io_weighted);
  EXPECT_GT(metrics.gauge("svc.t0000.latency_p99").value(), 0.0);
  EXPECT_GE(metrics.gauge("svc.t0000.latency_p99").value(),
            metrics.gauge("svc.t0000.latency_p50").value());
  // Registries are name-sorted: the export fingerprint is deterministic.
  obs::MetricsRegistry again;
  SvcChaosConfig cfg2 = chaos_config(17, true, &pool);
  cfg2.metrics = &again;
  (void)run_svc_chaos(cfg2);
  EXPECT_EQ(metrics.fingerprint(), again.fingerprint());
}

TEST(SvcMetrics, JainIndexProperties) {
  EXPECT_DOUBLE_EQ(obs::jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(obs::jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(obs::jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  // One tenant hogging everything: 1/n.
  EXPECT_NEAR(obs::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

}  // namespace
}  // namespace ndpcr::svc
