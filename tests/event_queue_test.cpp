// Property suite for sim::CalendarQueue: pop order must be identical -
// tie-breaks included - to a std::priority_queue running the same
// (time, id, seq) comparator, across seeded random workloads. This is
// the proof that swapping the failure DES from the heap to the calendar
// is behavior-preserving (docs/SIM.md).

#include <gtest/gtest.h>

#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace ndpcr::sim {
namespace {

struct EventGreater {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    return event_less(b, a);
  }
};
using ReferenceQueue =
    std::priority_queue<SimEvent, std::vector<SimEvent>, EventGreater>;

void expect_same_event(const SimEvent& got, const SimEvent& want,
                       std::size_t step) {
  ASSERT_EQ(got.time, want.time) << "step " << step;
  ASSERT_EQ(got.id, want.id) << "step " << step;
  ASSERT_EQ(got.seq, want.seq) << "step " << step;
}

// Drain both queues fully, comparing every pop.
void drain_and_compare(CalendarQueue& calendar, ReferenceQueue& reference) {
  std::size_t step = 0;
  while (!reference.empty()) {
    ASSERT_FALSE(calendar.empty());
    const SimEvent want = reference.top();
    reference.pop();
    expect_same_event(calendar.pop(), want, step++);
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarQueue, MatchesHeapOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    CalendarQueue calendar;
    ReferenceQueue reference;
    // Mixed pushes and pops with heavily quantized times so exact ties
    // (and id/seq tie-breaks) occur often.
    for (int op = 0; op < 20000; ++op) {
      if (reference.empty() || rng.next_double() < 0.6) {
        const SimEvent event{
            static_cast<double>(rng.next_below(500)) * 0.25,
            static_cast<std::uint32_t>(rng.next_below(64)),
            static_cast<std::uint32_t>(rng.next_below(4))};
        calendar.push(event);
        reference.push(event);
      } else {
        const SimEvent want = reference.top();
        reference.pop();
        SCOPED_TRACE(seed);
        expect_same_event(calendar.pop(), want, static_cast<std::size_t>(op));
      }
      ASSERT_EQ(calendar.size(), reference.size());
    }
    drain_and_compare(calendar, reference);
  }
}

TEST(CalendarQueue, MatchesHeapOnDesLikeWorkload) {
  // The failure-simulator access pattern: hold-and-reschedule around an
  // advancing clock, with occasional pull-forward pushes that land
  // behind already-scheduled events (cascades rewinding the cursor).
  Rng rng(42);
  CalendarQueue calendar(1024, 0.5);
  ReferenceQueue reference;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    const SimEvent event{rng.exponential(500.0), i, 0};
    calendar.push(event);
    reference.push(event);
  }
  std::vector<std::uint32_t> gen(1024, 0);
  for (int step = 0; step < 50000; ++step) {
    const SimEvent want = reference.top();
    reference.pop();
    expect_same_event(calendar.pop(), want, static_cast<std::size_t>(step));
    const double now = want.time;
    const std::uint32_t id = want.id;
    const SimEvent next{now + rng.exponential(500.0), id, ++gen[id]};
    calendar.push(next);
    reference.push(next);
    if (rng.next_double() < 0.05) {
      const auto victim = static_cast<std::uint32_t>(rng.next_below(1024));
      const SimEvent pulled{now + rng.next_double() * 2.0, victim,
                            ++gen[victim]};
      calendar.push(pulled);
      reference.push(pulled);
    }
  }
  drain_and_compare(calendar, reference);
}

TEST(CalendarQueue, ExactTiesPopInIdThenSeqOrder) {
  CalendarQueue calendar;
  // Same time everywhere; insertion order deliberately scrambled.
  calendar.push({3.0, 7, 1});
  calendar.push({3.0, 2, 5});
  calendar.push({3.0, 7, 0});
  calendar.push({3.0, 2, 1});
  calendar.push({1.0, 9, 9});
  const SimEvent a = calendar.pop();
  EXPECT_EQ(a.time, 1.0);
  const SimEvent b = calendar.pop();
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(b.seq, 1u);
  const SimEvent c = calendar.pop();
  EXPECT_EQ(c.id, 2u);
  EXPECT_EQ(c.seq, 5u);
  const SimEvent d = calendar.pop();
  EXPECT_EQ(d.id, 7u);
  EXPECT_EQ(d.seq, 0u);
  const SimEvent e = calendar.pop();
  EXPECT_EQ(e.id, 7u);
  EXPECT_EQ(e.seq, 1u);
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueue, SurvivesResizeAndSparseJumps) {
  // Grow far past the initial bucket array (forcing rebuilds), then
  // drain a sparse far-apart tail (forcing direct-search fallbacks).
  Rng rng(7);
  CalendarQueue calendar(16, 1.0);
  ReferenceQueue reference;
  for (int i = 0; i < 200000; ++i) {
    const SimEvent event{rng.next_double() * 10.0,
                         static_cast<std::uint32_t>(rng.next_below(1u << 20)),
                         0};
    calendar.push(event);
    reference.push(event);
  }
  // Sparse tail: events separated by ~1e6x the dense spacing.
  for (int i = 0; i < 64; ++i) {
    const SimEvent event{1e6 + i * 5e4, static_cast<std::uint32_t>(i), 0};
    calendar.push(event);
    reference.push(event);
  }
  drain_and_compare(calendar, reference);
}

TEST(CalendarQueue, PushBehindCursorIsStillServedFirst) {
  CalendarQueue calendar;
  calendar.push({100.0, 1, 0});
  calendar.push({200.0, 2, 0});
  EXPECT_EQ(calendar.pop().id, 1u);  // cursor now past window(100)
  calendar.push({50.0, 3, 0});       // behind the cursor: must rewind
  EXPECT_EQ(calendar.pop().id, 3u);
  EXPECT_EQ(calendar.pop().id, 2u);
}

TEST(CalendarQueue, FarFutureTimesStayOrdered) {
  CalendarQueue calendar;
  calendar.push({1e300, 1, 0});  // far past the window range: clamped
  calendar.push({2e300, 2, 0});
  calendar.push({5.0, 3, 0});
  EXPECT_EQ(calendar.pop().id, 3u);
  EXPECT_EQ(calendar.pop().id, 1u);
  EXPECT_EQ(calendar.pop().id, 2u);
}

TEST(CalendarQueue, RejectsInvalidTimesAndEmptyPop) {
  CalendarQueue calendar;
  EXPECT_THROW(calendar.push({-1.0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(
      calendar.push({std::numeric_limits<double>::infinity(), 0, 0}),
      std::invalid_argument);
  EXPECT_THROW(
      calendar.push({std::numeric_limits<double>::quiet_NaN(), 0, 0}),
      std::invalid_argument);
  EXPECT_THROW(calendar.pop(), std::logic_error);
  EXPECT_TRUE(calendar.empty());
}

}  // namespace
}  // namespace ndpcr::sim
