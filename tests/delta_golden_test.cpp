// Golden bit-identity tests for the incremental-checkpointing wire
// formats (docs/DELTA.md). Four formats are compatibility surfaces:
//
//   NDDL  delta::DeltaCodec streams     (block deltas between payloads)
//   NDRD  ckpt::RegionRegistry deltas   (dirty-region capture payloads)
//   NDRC  ckpt::DedupIndex recipes      (block refs for deduped images)
//   NDFR  ndp::NdpAgent drain frames    (full/delta framing on the wire)
//
// plus the NDCI image header's kind/base_id fields and the CDC chunker
// whose boundaries decide block identity for dedup. Every CRC below is
// pinned from the implementation that introduced the format; a change
// here means stored checkpoints written by older builds stop restoring
// and is a bug unless the format is deliberately revved.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ckpt/dedup_level.hpp"
#include "ckpt/image.hpp"
#include "ckpt/region.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "delta/delta.hpp"
#include "ndp/agent.hpp"

namespace ndpcr {
namespace {

Bytes mixed_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(2) ? rng.next_below(8)
                                                 : rng.next_below(256));
  }
  return data;
}

TEST(DeltaGolden, DeltaStreamBytesArePinned) {
  const Bytes base = mixed_payload(8192, 7);
  Bytes target = base;
  for (std::size_t i = 1000; i < 1200; ++i) {
    target[i] = static_cast<std::byte>(i & 0xFF);
  }
  target.resize(8500, std::byte{0x5A});  // growth tail

  const delta::DeltaCodec codec(256);
  const Bytes stream = codec.encode(base, target);
  EXPECT_EQ(Crc32::compute(stream), 0x5e71d944u);
  EXPECT_EQ(codec.decode(ByteSpan(base), ByteSpan(stream)), target);
}

TEST(DeltaGolden, RegionDeltaPayloadIsPinned) {
  std::vector<std::uint64_t> hot(256);
  std::vector<std::uint64_t> cold(512);
  for (std::size_t i = 0; i < hot.size(); ++i) hot[i] = i * 3;
  for (std::size_t i = 0; i < cold.size(); ++i) cold[i] = i * 7;

  ckpt::RegionRegistry reg;
  reg.register_vector("hot", hot);
  reg.register_vector("cold", cold);
  const Bytes full = reg.capture();
  hot[10] = 0xDEAD;
  const Bytes delta = reg.capture_delta();
  ASSERT_TRUE(ckpt::RegionRegistry::is_delta_payload(delta));
  EXPECT_EQ(Crc32::compute(delta), 0xbecda893u);
  // The golden payload still folds into the base it was cut against.
  const Bytes folded = ckpt::RegionRegistry::apply_delta(full, delta);
  EXPECT_EQ(folded, reg.capture());
}

TEST(DeltaGolden, DedupRecipeBytesArePinned) {
  const Bytes image = mixed_payload(16 * 1024, 21);
  ckpt::DedupIndex index(delta::CdcParams{256, 512, 1024});
  const auto plan = index.plan(image);
  EXPECT_EQ(Crc32::compute(plan.recipe), 0x571e57c3u);
  index.admit(plan, 0, 1);

  // A second image sharing a prefix dedups against the first; its recipe
  // (same keys, now mostly dups) is equally pinned.
  Bytes shifted = image;
  shifted.insert(shifted.begin() + 9000, 64, std::byte{0x11});
  const auto plan2 = index.plan(shifted);
  EXPECT_GT(plan2.dup_bytes, 0u);
  EXPECT_EQ(Crc32::compute(plan2.recipe), 0x3cf36695u);
}

TEST(DeltaGolden, CdcBoundariesArePinned) {
  const Bytes data = mixed_payload(64 * 1024, 33);
  const auto bounds =
      delta::cdc_boundaries(data, delta::CdcParams{2048, 4096, 8192});
  Crc32 crc;
  for (const auto b : bounds) {
    const std::uint64_t v = b;
    crc.update(&v, sizeof(v));
  }
  EXPECT_EQ(bounds.size(), 15u);
  EXPECT_EQ(crc.value(), 0x365bb912u);
}

TEST(DeltaGolden, ImageHeaderCarriesKindAndBase) {
  ckpt::CheckpointMeta meta;
  meta.app_id = 42;
  meta.rank = 3;
  meta.checkpoint_id = 9;
  meta.step = 100;
  meta.kind = ckpt::PayloadKind::kDelta;
  meta.base_id = 8;
  const Bytes payload = mixed_payload(512, 41);
  const Bytes framed = ckpt::CheckpointImage::build(meta, payload);
  EXPECT_EQ(Crc32::compute(framed), 0x98effb3bu);
  const auto parsed = ckpt::CheckpointImage::parse(framed);
  EXPECT_EQ(parsed.meta().kind, ckpt::PayloadKind::kDelta);
  EXPECT_EQ(parsed.meta().base_id, 8u);
}

TEST(DeltaGolden, AgentFrameBytesArePinned) {
  const Bytes payload = mixed_payload(1024, 55);
  const Bytes full =
      ndp::NdpAgent::build_frame(ckpt::PayloadKind::kFull, 0, payload);
  const Bytes delta =
      ndp::NdpAgent::build_frame(ckpt::PayloadKind::kDelta, 17, payload);
  EXPECT_EQ(full.size(), payload.size() + 13);
  EXPECT_EQ(Crc32::compute(full), 0xe2a29fb4u);
  EXPECT_EQ(Crc32::compute(delta), 0x6a0bb1acu);

  const auto parsed = ndp::NdpAgent::parse_frame(delta);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ckpt::PayloadKind::kDelta);
  EXPECT_EQ(parsed->base_id, 17u);
  EXPECT_EQ(parsed->payload, payload);
}

}  // namespace
}  // namespace ndpcr
