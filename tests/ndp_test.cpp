#include <gtest/gtest.h>

#include "common/units.hpp"
#include "ndp/ndp.hpp"

namespace ndpcr::ndp {
namespace {

using namespace ndpcr::units;

TEST(Ndp, SaturatingRateMatchesSection44) {
  // gzip(1): factor 72.77% -> U/C = 3.67 -> 367 MB/s at 100 MB/s IO.
  EXPECT_NEAR(saturating_compression_rate(0.7277, mbps(100)) / mbps(1), 367.2,
              0.5);
  // No compression: the rate equals the IO bandwidth.
  EXPECT_DOUBLE_EQ(saturating_compression_rate(0.0, mbps(100)), mbps(100));
}

TEST(Ndp, RequiredCoresRoundsUp) {
  // Table 3: gzip(1) needs 4 cores at 110.1 MB/s per core for 367 MB/s.
  EXPECT_EQ(required_cores(mbps(367), mbps(110.1)), 4);
  // lz4: 283 MB/s at 441.9 MB/s per core -> 1 core.
  EXPECT_EQ(required_cores(mbps(283), mbps(441.9)), 1);
  // xz(6): 596 MB/s at 4.8 MB/s -> 125 cores.
  EXPECT_EQ(required_cores(mbps(596), mbps(4.8)), 125);
  // Exact fit does not round up.
  EXPECT_EQ(required_cores(mbps(200), mbps(100)), 2);
}

TEST(Ndp, MinIoIntervalMatchesTable3) {
  const double ckpt = bytes_from_gb(112);
  // gzip(1): 112 GB at 72.77% -> ~305 s.
  EXPECT_NEAR(min_io_interval(ckpt, 0.7277, mbps(100)), 305.0, 1.0);
  // lz4(1): 64.75% -> ~395 s.
  EXPECT_NEAR(min_io_interval(ckpt, 0.6475, mbps(100)), 395.0, 1.0);
  // xz(6): 83.25% -> ~188 s.
  EXPECT_NEAR(min_io_interval(ckpt, 0.8325, mbps(100)), 188.0, 1.0);
  // Uncompressed: 1120 s (18.67 minutes, section 3.4).
  EXPECT_NEAR(min_io_interval(ckpt, 0.0, mbps(100)), 1120.0, 1e-9);
}

TEST(Ndp, DrainTimeOverlapVsSerial) {
  const double ckpt = bytes_from_gb(112);
  const double overlapped = drain_time(ckpt, 0.728, mbps(440.4), mbps(100));
  const double serial =
      drain_time(ckpt, 0.728, mbps(440.4), mbps(100), false);
  EXPECT_LT(overlapped, serial);
  EXPECT_NEAR(overlapped, 304.6, 1.0);       // bounded by the IO write
  EXPECT_NEAR(serial, 254.3 + 304.6, 2.0);   // compress + write
  // Compression-bound drain when the NDP is slow.
  EXPECT_NEAR(drain_time(ckpt, 0.728, mbps(100), mbps(100)), 1120.0, 1.0);
}

TEST(Ndp, DeriveSizingBundlesTheTable3Row) {
  const NdpSizing s =
      derive_sizing(0.7277, mbps(110.1), bytes_from_gb(112), mbps(100));
  EXPECT_EQ(s.cores, 4);
  EXPECT_NEAR(s.required_rate / mbps(1), 367.2, 0.5);
  EXPECT_NEAR(s.io_interval, 305.0, 1.0);
}

TEST(Ndp, InvalidInputsThrow) {
  EXPECT_THROW(saturating_compression_rate(1.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(saturating_compression_rate(-0.1, 100.0),
               std::invalid_argument);
  EXPECT_THROW(saturating_compression_rate(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(required_cores(100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(min_io_interval(1.0, 0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::ndp
