#include <gtest/gtest.h>

#include <string>

#include "ckpt/image.hpp"
#include "ckpt/multilevel.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/region.hpp"
#include "ckpt/stores.hpp"
#include "ckpt/tenant_store.hpp"
#include "common/rng.hpp"

namespace ndpcr::ckpt {
namespace {

Bytes payload_of(const std::string& s) { return to_bytes(s.data(), s.size()); }

TEST(Image, BuildParseRoundTrip) {
  CheckpointMeta meta{.app_id = 7, .rank = 3, .checkpoint_id = 99, .step = 12};
  const Bytes payload = payload_of("application state bytes");
  const Bytes raw = CheckpointImage::build(meta, payload);

  const CheckpointImage image = CheckpointImage::parse(raw);
  EXPECT_EQ(image.meta().app_id, 7u);
  EXPECT_EQ(image.meta().rank, 3u);
  EXPECT_EQ(image.meta().checkpoint_id, 99u);
  EXPECT_EQ(image.meta().step, 12u);
  EXPECT_EQ(Bytes(image.payload().begin(), image.payload().end()), payload);
}

TEST(Image, PeekMetaWithoutFullValidation) {
  const Bytes raw = CheckpointImage::build(
      CheckpointMeta{.app_id = 1, .rank = 2, .checkpoint_id = 3, .step = 4},
      payload_of("x"));
  const CheckpointMeta meta = CheckpointImage::peek_meta(raw);
  EXPECT_EQ(meta.rank, 2u);
  EXPECT_EQ(meta.checkpoint_id, 3u);
}

TEST(Image, ParseRejectsCorruption) {
  Bytes raw = CheckpointImage::build(CheckpointMeta{}, payload_of("payload"));
  Bytes truncated(raw.begin(), raw.end() - 1);
  EXPECT_THROW(CheckpointImage::parse(truncated), ImageError);

  Bytes flipped = raw;
  flipped.back() ^= std::byte{0x01};
  EXPECT_THROW(CheckpointImage::parse(flipped), ImageError);

  Bytes bad_magic = raw;
  bad_magic[0] = std::byte{0x00};
  EXPECT_THROW(CheckpointImage::parse(bad_magic), ImageError);

  EXPECT_THROW(CheckpointImage::parse(ByteSpan{}), ImageError);
}

TEST(Region, CaptureRestoreRoundTrip) {
  std::vector<double> field(100, 1.5);
  std::vector<std::int32_t> index(10, 7);
  RegionRegistry reg;
  reg.register_vector("field", field);
  reg.register_vector("index", index);
  EXPECT_EQ(reg.total_bytes(), 100 * 8 + 10 * 4);

  const Bytes snap = reg.capture();
  field.assign(100, -2.0);
  index.assign(10, 0);
  reg.restore(snap);
  EXPECT_EQ(field[50], 1.5);
  EXPECT_EQ(index[5], 7);
}

TEST(Region, RejectsDuplicateNames) {
  std::vector<double> a(4), b(4);
  RegionRegistry reg;
  reg.register_vector("x", a);
  EXPECT_THROW(reg.register_vector("x", b), ImageError);
}

TEST(Region, RestoreRejectsMismatchedLayout) {
  std::vector<double> a(4);
  RegionRegistry reg;
  reg.register_vector("x", a);
  const Bytes snap = reg.capture();

  std::vector<double> c(5);
  RegionRegistry other;
  other.register_vector("x", c);
  EXPECT_THROW(other.restore(snap), ImageError);

  RegionRegistry renamed;
  std::vector<double> d(4);
  renamed.register_vector("y", d);
  EXPECT_THROW(renamed.restore(snap), ImageError);
}

TEST(Region, ResizedVectorIsDetectedNotSilentlyRead) {
  // Regression: a resized register_vector target used to be read through
  // its stale extent; now capture and restore both throw.
  std::vector<double> field(8, 1.0);
  RegionRegistry reg;
  reg.register_vector("field", field);
  const Bytes snap = reg.capture();

  field.resize(16);
  EXPECT_THROW((void)reg.capture(), ImageError);
  EXPECT_THROW(reg.restore(snap), ImageError);
  EXPECT_THROW((void)reg.capture_delta(), ImageError);

  field.resize(8);  // back to the registered size: usable again
  reg.restore(snap);
  EXPECT_EQ(field[3], 1.0);
}

TEST(Region, DeltaCaptureFoldsIntoBase) {
  std::vector<double> hot(64, 1.0);
  std::vector<std::int32_t> cold(256, 9);
  RegionRegistry reg;
  reg.register_vector("hot", hot);
  reg.register_vector("cold", cold);

  const Bytes base = reg.capture();
  hot[5] = 2.5;  // only `hot` changes

  DeltaCaptureStats stats;
  const Bytes delta = reg.capture_delta(&stats);
  EXPECT_TRUE(RegionRegistry::is_delta_payload(delta));
  EXPECT_FALSE(RegionRegistry::is_delta_payload(base));
  EXPECT_EQ(stats.regions_total, 2u);
  EXPECT_EQ(stats.regions_included, 1u);  // hash sweep caught the change
  EXPECT_EQ(stats.included_bytes, 64 * sizeof(double));
  EXPECT_EQ(stats.skipped_bytes, 256 * sizeof(std::int32_t));
  EXPECT_LT(delta.size(), base.size());

  const Bytes folded = RegionRegistry::apply_delta(base, delta);
  hot.assign(64, 0.0);
  cold.assign(256, 0);
  reg.restore(folded);
  EXPECT_EQ(hot[5], 2.5);
  EXPECT_EQ(hot[6], 1.0);
  EXPECT_EQ(cold[100], 9);
}

TEST(Region, ExplicitTrackingTrustsMarks) {
  std::vector<double> a(16, 1.0);
  std::vector<double> b(16, 2.0);
  RegionRegistry reg;
  reg.set_tracking(DirtyTracking::kExplicit);
  reg.register_vector("a", a);
  reg.register_vector("b", b);
  (void)reg.capture();

  a[0] = -1.0;
  reg.mark_dirty("a");
  b[0] = -2.0;  // changed but never marked: elided by design
  DeltaCaptureStats stats;
  (void)reg.capture_delta(&stats);
  EXPECT_EQ(stats.regions_included, 1u);
  EXPECT_THROW(reg.mark_dirty("nope"), ImageError);
}

TEST(Region, DeltaAgainstWrongBaseRejected) {
  std::vector<double> v(32, 1.0);
  RegionRegistry reg;
  reg.register_vector("v", v);
  const Bytes base = reg.capture();
  v[1] = 7.0;
  const Bytes delta = reg.capture_delta();

  // A payload captured from different contents is not this delta's base.
  std::vector<double> other(32, 3.0);
  RegionRegistry reg2;
  reg2.register_vector("v", other);
  const Bytes wrong_base = reg2.capture();
  EXPECT_THROW((void)RegionRegistry::apply_delta(wrong_base, delta),
               ImageError);
  // And the true base folds fine.
  const Bytes folded = RegionRegistry::apply_delta(base, delta);
  reg.restore(folded);
  EXPECT_EQ(v[1], 7.0);
}

TEST(Region, DeltaBeforeFirstCaptureThrows) {
  std::vector<double> v(4);
  RegionRegistry reg;
  reg.register_vector("v", v);
  EXPECT_THROW((void)reg.capture_delta(), ImageError);
}

TEST(Image, KindAndBaseIdRoundTrip) {
  CheckpointMeta meta{.app_id = 3, .rank = 1, .checkpoint_id = 10, .step = 0};
  meta.kind = PayloadKind::kDelta;
  meta.base_id = 9;
  const Bytes raw = CheckpointImage::build(meta, payload_of("delta bytes"));

  const CheckpointMeta peeked = CheckpointImage::peek_meta(raw);
  EXPECT_EQ(peeked.kind, PayloadKind::kDelta);
  EXPECT_EQ(peeked.base_id, 9u);
  const CheckpointImage image = CheckpointImage::parse(raw);
  EXPECT_EQ(image.meta().kind, PayloadKind::kDelta);
  EXPECT_EQ(image.meta().base_id, 9u);

  // Full images default to kind full, base 0.
  const Bytes full =
      CheckpointImage::build(CheckpointMeta{}, payload_of("s"));
  EXPECT_EQ(CheckpointImage::peek_meta(full).kind, PayloadKind::kFull);
}

TEST(NvmStore, DedupChargesUniqueBlocksOnly) {
  NvmStore store(1024, /*dedup_block_bytes=*/64);
  const Bytes same(256, std::byte{0x7});  // 4 identical 64B blocks
  ASSERT_TRUE(store.put(1, same));
  EXPECT_EQ(store.used_bytes(), 64u);   // intra-image dedup
  EXPECT_EQ(store.logical_bytes(), 256u);

  ASSERT_TRUE(store.put(2, same));  // cross-checkpoint dedup: free
  EXPECT_EQ(store.used_bytes(), 64u);
  EXPECT_EQ(store.logical_bytes(), 512u);
  EXPECT_EQ(store.dedup_saved_bytes(), 448u);

  store.erase(1);
  EXPECT_EQ(store.used_bytes(), 64u);  // block still referenced by id 2
  store.erase(2);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.logical_bytes(), 0u);
}

TEST(NvmStore, DedupExtendsRetainedHistory) {
  // Mostly-shared checkpoints: with dedup the same capacity retains more
  // of them than their logical sizes would allow.
  NvmStore store(4096, /*dedup_block_bytes=*/256);
  Bytes data(2048, std::byte{0x11});
  for (std::uint64_t id = 1; id <= 6; ++id) {
    data[0] = static_cast<std::byte>(id);  // one block differs per commit
    ASSERT_TRUE(store.put(id, data));
  }
  // 6 * 2048 logical bytes live in 4096 physical.
  EXPECT_EQ(store.count(), 6u);
  EXPECT_EQ(store.eviction_count(), 0u);
  EXPECT_GT(store.logical_bytes(), store.capacity_bytes());
  EXPECT_LE(store.used_bytes(), store.capacity_bytes());
}

TEST(NvmStore, FifoEviction) {
  NvmStore store(100);
  EXPECT_TRUE(store.put(1, Bytes(40)));
  EXPECT_TRUE(store.put(2, Bytes(40)));
  EXPECT_EQ(store.count(), 2u);
  // Third checkpoint forces out the oldest.
  EXPECT_TRUE(store.put(3, Bytes(40)));
  EXPECT_FALSE(store.contains(1));
  EXPECT_TRUE(store.contains(2));
  EXPECT_TRUE(store.contains(3));
  EXPECT_EQ(store.eviction_count(), 1u);
  EXPECT_EQ(store.newest_id().value(), 3u);
}

TEST(NvmStore, LockedCheckpointsBlockEviction) {
  NvmStore store(100);
  ASSERT_TRUE(store.put(1, Bytes(60)));
  store.lock(1);
  // Does not fit without evicting the locked entry: put must fail and
  // leave the store unchanged.
  EXPECT_FALSE(store.put(2, Bytes(60)));
  EXPECT_TRUE(store.contains(1));
  store.unlock(1);
  EXPECT_TRUE(store.put(3, Bytes(60)));
  EXPECT_FALSE(store.contains(1));
}

TEST(NvmStore, LocksNest) {
  NvmStore store(100);
  ASSERT_TRUE(store.put(1, Bytes(10)));
  store.lock(1);
  store.lock(1);
  store.unlock(1);
  EXPECT_TRUE(store.is_locked(1));
  store.unlock(1);
  EXPECT_FALSE(store.is_locked(1));
  EXPECT_THROW(store.unlock(1), std::logic_error);
}

TEST(NvmStore, EraseAndClear) {
  NvmStore store(100);
  ASSERT_TRUE(store.put(1, Bytes(30)));
  ASSERT_TRUE(store.put(2, Bytes(30)));
  store.lock(2);
  EXPECT_THROW(store.erase(2), std::logic_error);
  store.erase(1);
  EXPECT_EQ(store.used_bytes(), 30u);
  store.erase(99);  // unknown id: no-op
  store.clear();
  EXPECT_EQ(store.count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(NvmStore, RejectsNonMonotonicIds) {
  NvmStore store(100);
  ASSERT_TRUE(store.put(5, Bytes(10)));
  EXPECT_THROW(store.put(5, Bytes(10)), std::logic_error);
  EXPECT_THROW(store.put(4, Bytes(10)), std::logic_error);
}

TEST(NvmStore, OversizedCheckpointRejected) {
  NvmStore store(100);
  EXPECT_FALSE(store.put(1, Bytes(101)));
  EXPECT_EQ(store.count(), 0u);
}

TEST(NvmStore, ExactCapacityFillRefundAndReuse) {
  // Capacity accounting at the exact-fit boundary: an insert landing
  // exactly on capacity must be admitted, the refund on erase must
  // balance to zero, and the refunded space must be reusable byte for
  // byte.
  NvmStore store(100);
  ASSERT_TRUE(store.put(1, Bytes(100)));
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_EQ(store.count(), 1u);
  // Another exact-fit insert evicts the resident entry and reuses every
  // refunded byte.
  ASSERT_TRUE(store.put(2, Bytes(100)));
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_FALSE(store.contains(1));
  EXPECT_EQ(store.eviction_count(), 1u);
  store.erase(2);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.logical_bytes(), 0u);
  ASSERT_TRUE(store.put(3, Bytes(100)));
  EXPECT_EQ(store.used_bytes(), 100u);
}

TEST(NvmStore, DedupExactCapacityRefundOnLastRefDrop) {
  // Dedup accounting at the same boundary: a fully shared second
  // checkpoint fits even with the device exactly full (it charges
  // nothing), dropping one referent refunds nothing, dropping the last
  // referent refunds everything, and the refunded space admits an
  // exact-fit insert of fresh content.
  NvmStore store(128, /*dedup_block_bytes=*/64);
  Bytes shared(128, std::byte{0xAA});
  shared[64] = std::byte{0xBB};  // two distinct 64B blocks
  ASSERT_TRUE(store.put(1, shared));
  EXPECT_EQ(store.used_bytes(), 128u);  // exactly at capacity
  ASSERT_TRUE(store.put(2, shared));    // all blocks resident: cost 0
  EXPECT_EQ(store.used_bytes(), 128u);
  EXPECT_EQ(store.logical_bytes(), 256u);
  store.erase(1);
  EXPECT_EQ(store.used_bytes(), 128u);  // id 2 still references them
  store.erase(2);                       // last-ref drop
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.logical_bytes(), 0u);
  Bytes fresh(128, std::byte{0x11});
  fresh[64] = std::byte{0x22};
  ASSERT_TRUE(store.put(3, fresh));
  EXPECT_EQ(store.used_bytes(), 128u);
}

TEST(KvStore, PutGetNewest) {
  KvStore store;
  store.put(0, 1, Bytes(10));
  store.put(0, 3, Bytes(10));
  store.put(1, 2, Bytes(10));
  EXPECT_TRUE(store.contains(0, 1));
  EXPECT_FALSE(store.contains(0, 2));
  EXPECT_EQ(store.newest_id(0).value(), 3u);
  EXPECT_EQ(store.newest_id(1).value(), 2u);
  EXPECT_FALSE(store.newest_id(2).has_value());
  EXPECT_EQ(store.used_bytes(), 30u);
  store.erase(0, 3);
  EXPECT_EQ(store.newest_id(0).value(), 1u);
}

TEST(TenantStoreView, DisjointNamespacesOnSharedDevice) {
  KvStore device;
  TenantStoreView a(device, /*tenant_id=*/0, /*rank_count=*/2);
  TenantStoreView b(device, /*tenant_id=*/1, /*rank_count=*/2);
  ASSERT_TRUE(a.put(0, 1, payload_of("tenant a")));
  ASSERT_TRUE(b.put(0, 1, payload_of("tenant b")));
  // Same (rank, id) key, no collision: each view reads its own bytes.
  EXPECT_EQ(a.get(0, 1).value(), payload_of("tenant a"));
  EXPECT_EQ(b.get(0, 1).value(), payload_of("tenant b"));
  // A fresh view with the same tenant id sees the tenant's data (restart
  // after a simulated process death).
  TenantStoreView a2(device, 0, 2);
  EXPECT_TRUE(a2.contains(0, 1));
  EXPECT_EQ(a2.newest_id(0).value(), 1u);
  // clear() scrubs only the clearing tenant's namespace.
  a.clear();
  EXPECT_FALSE(a.contains(0, 1));
  EXPECT_TRUE(b.contains(0, 1));
}

TEST(TenantStoreView, SubSlotsSeparateRolesWithinATenant) {
  KvStore device;
  TenantStoreView slot0(device, 3, 2, nullptr, /*sub_slot=*/0);
  TenantStoreView slot1(device, 3, 2, nullptr, /*sub_slot=*/1);
  ASSERT_TRUE(slot0.put(1, 7, payload_of("own space")));
  ASSERT_TRUE(slot1.put(1, 7, payload_of("partner space")));
  EXPECT_EQ(slot0.get(1, 7).value(), payload_of("own space"));
  EXPECT_EQ(slot1.get(1, 7).value(), payload_of("partner space"));
  EXPECT_EQ(slot1.rank_offset() - slot0.rank_offset(),
            kTenantSubSlotStride);
}

TEST(StoreQuota, ChargesDeniesAndExhausts) {
  StoreQuota quota;
  quota.byte_budget = 100;
  EXPECT_FALSE(quota.would_deny(100));  // exact fit is within the grant
  EXPECT_TRUE(quota.would_deny(101));
  EXPECT_TRUE(quota.charge_write(60));
  EXPECT_FALSE(quota.exhausted());
  EXPECT_FALSE(quota.charge_write(41));  // over budget: denied, uncharged
  EXPECT_EQ(quota.write_denials, 1u);
  EXPECT_EQ(quota.bytes_charged, 60u);
  EXPECT_FALSE(quota.exhausted());  // denied for size, headroom remains
  EXPECT_TRUE(quota.charge_write(40));
  EXPECT_TRUE(quota.exhausted());  // grant fully spent

  StoreQuota ops;
  ops.op_budget = 2;
  EXPECT_TRUE(ops.charge_write(10));
  ops.charge_read();  // reads count against the op budget...
  EXPECT_TRUE(ops.exhausted());
  ops.charge_read();  // ...but are never denied
  EXPECT_EQ(ops.ops_charged, 3u);
  EXPECT_FALSE(ops.charge_write(1));
}

TEST(TenantStoreView, QuotaDeniesWritesNeverReads) {
  KvStore device;
  StoreQuota quota;
  quota.byte_budget = 10;
  TenantStoreView view(device, 0, 1, &quota);
  ASSERT_TRUE(view.put(0, 1, Bytes(10)));
  const StoreStatus denied = view.put(0, 2, Bytes(1));
  EXPECT_FALSE(denied.ok());
  EXPECT_TRUE(denied.error().permanent());
  EXPECT_EQ(quota.write_denials, 1u);
  EXPECT_FALSE(device.contains(0, 2));  // denied put stored nothing
  // Reads still work with the grant spent: restart is always possible.
  EXPECT_TRUE(view.get(0, 1).ok());
  EXPECT_TRUE(quota.exhausted());
}

TEST(XorParity, RebuildsMissingBuffer) {
  Rng rng(4);
  std::vector<Bytes> buffers(4, Bytes(256));
  for (auto& buf : buffers) {
    for (auto& b : buf) b = static_cast<std::byte>(rng.next_below(256));
  }
  const Bytes parity = xor_parity(buffers);

  // Drop buffer 2; rebuild it from the survivors + parity.
  std::vector<Bytes> survivors = {buffers[0], buffers[1], buffers[3]};
  EXPECT_EQ(xor_rebuild(parity, survivors), buffers[2]);
}

TEST(XorParity, RejectsMismatchedLengths) {
  EXPECT_THROW(xor_parity({Bytes(4), Bytes(5)}), std::invalid_argument);
  EXPECT_THROW(xor_parity({}), std::invalid_argument);
  EXPECT_THROW(xor_rebuild(Bytes(4), {Bytes(5)}), std::invalid_argument);
}

// ---------------------------------------------------------------------------

MultilevelConfig small_config(std::uint32_t nodes) {
  MultilevelConfig cfg;
  cfg.node_count = nodes;
  cfg.nvm_capacity_bytes = 1 << 20;
  cfg.partner_every = 1;
  cfg.io_every = 2;
  return cfg;
}

std::vector<Bytes> make_payloads(std::uint32_t nodes, int tag) {
  std::vector<Bytes> payloads;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    std::string s = "rank " + std::to_string(r) + " state v" +
                    std::to_string(tag);
    payloads.push_back(payload_of(s));
  }
  return payloads;
}

std::vector<ByteSpan> views(const std::vector<Bytes>& payloads) {
  std::vector<ByteSpan> v;
  for (const auto& p : payloads) v.emplace_back(p);
  return v;
}

TEST(Multilevel, RecoversFromLocalWhenHealthy) {
  MultilevelManager mgr(small_config(4));
  const auto p1 = make_payloads(4, 1);
  mgr.commit(views(p1));
  const auto p2 = make_payloads(4, 2);
  const auto id2 = mgr.commit(views(p2));

  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, id2);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(rec->payloads[r], p2[r]);
    EXPECT_EQ(rec->levels[r], RecoveryLevel::kLocal);
  }
}

TEST(Multilevel, FailedNodeRecoversFromPartner) {
  MultilevelManager mgr(small_config(4));
  const auto p1 = make_payloads(4, 1);
  mgr.commit(views(p1));

  mgr.fail_node(2);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  // Rank 2's local copy is gone; its partner copy lives on node 3.
  EXPECT_EQ(rec->levels[2], RecoveryLevel::kPartner);
  EXPECT_EQ(rec->payloads[2], p1[2]);
  // Node 2 also hosted rank 1's partner copy, but rank 1's local survives.
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kLocal);
}

TEST(Multilevel, DoubleFailureFallsBackToIo) {
  auto cfg = small_config(4);
  cfg.io_every = 1;  // every checkpoint reaches IO
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(4, 1);
  mgr.commit(views(p1));

  // Node 2 and its partner-holder node 3 both fail: rank 2 must use IO.
  mgr.fail_node(2);
  mgr.fail_node(3);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[2], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[2], p1[2]);
}

TEST(Multilevel, RollsBackToOlderCommonCheckpoint) {
  auto cfg = small_config(4);
  cfg.partner_every = 0;  // no partner level
  cfg.io_every = 2;       // ids 2, 4, ... reach IO
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(4, 1);
  const auto p2 = make_payloads(4, 2);
  const auto p3 = make_payloads(4, 3);
  mgr.commit(views(p1));
  const auto id2 = mgr.commit(views(p2));
  mgr.commit(views(p3));  // id 3: local only

  mgr.fail_node(0);  // rank 0 lost checkpoint 3; must roll back to id 2
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, id2);
  EXPECT_EQ(rec->levels[0], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[0], p2[0]);
  // Healthy ranks still restore id 2 from their local buffers.
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kLocal);
}

TEST(Multilevel, CompressedIoRoundTrips) {
  auto cfg = small_config(2);
  cfg.io_every = 1;
  cfg.partner_every = 0;
  cfg.io_codec = compress::CodecId::kDeflateStyle;
  cfg.io_codec_level = 1;
  MultilevelManager mgr(cfg);
  std::vector<Bytes> payloads;
  payloads.push_back(Bytes(10000, std::byte{0x11}));  // compressible
  payloads.push_back(Bytes(10000, std::byte{0x22}));
  mgr.commit(views(payloads));

  // The IO store holds less than the raw payload: compression was applied.
  EXPECT_LT(mgr.io_store().used_bytes(), 2000u);

  mgr.fail_node(0);
  mgr.fail_node(1);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[0], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[0], payloads[0]);
  EXPECT_EQ(rec->payloads[1], payloads[1]);
}

TEST(Multilevel, CorruptionDetectedAndLevelSkipped) {
  auto cfg = small_config(3);
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(3, 1);
  mgr.commit(views(p1));

  mgr.corrupt_local(1);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  // The CRC catches the flipped byte; rank 1 falls back to its partner.
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kPartner);
  EXPECT_EQ(rec->payloads[1], p1[1]);
}

TEST(Multilevel, CorruptPartnerCopyDetectedAndSkipped) {
  auto cfg = small_config(3);
  cfg.io_every = 1;  // IO backs up everything
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(3, 1);
  mgr.commit(views(p1));

  // Rank 1's local copy is gone and its partner copy is silently
  // corrupted: the CRC rejects the copy and recovery falls through to IO.
  ASSERT_TRUE(mgr.corrupt_partner(1));
  mgr.fail_node(1);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[1], p1[1]);
}

TEST(Multilevel, CorruptIoEntryRollsBackToOlderCheckpoint) {
  auto cfg = small_config(2);
  cfg.partner_every = 0;
  cfg.io_every = 1;
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(2, 1);
  const auto p2 = make_payloads(2, 2);
  const auto id1 = mgr.commit(views(p1));
  mgr.commit(views(p2));

  // Rank 0's newest IO entry (id 2) is silently corrupted and its node is
  // lost: id 2 is unrestorable for rank 0, so recovery rolls back to the
  // intact id 1.
  ASSERT_TRUE(mgr.corrupt_io(0));
  mgr.fail_node(0);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->checkpoint_id, id1);
  EXPECT_EQ(rec->levels[0], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[0], p1[0]);
}

TEST(Multilevel, XorTwoLossesWithoutIoIsCleanlyUnrecoverable) {
  auto cfg = small_config(8);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;
  cfg.io_every = 0;  // no third level to fall back on
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(8, 1);
  mgr.commit(views(p1));

  // Two members of group 0 die: each rebuild needs the other's local
  // copy, so the group is lost and recover() reports it cleanly.
  mgr.fail_node(1);
  mgr.fail_node(2);
  EXPECT_FALSE(mgr.recover().has_value());
}

TEST(Multilevel, NoCommonCheckpointReturnsNulloptAcrossSchemes) {
  for (const auto scheme :
       {PartnerScheme::kCopy, PartnerScheme::kXorGroup}) {
    auto cfg = small_config(8);
    cfg.partner_scheme = scheme;
    cfg.xor_group_size = 4;
    cfg.io_every = 0;
    MultilevelManager mgr(cfg);
    const auto p1 = make_payloads(8, 1);
    mgr.commit(views(p1));

    // Rank 1 loses its local copy and every node that could reconstruct
    // it: node 2 (copy-scheme partner) and nodes 2..4 (the rest of its
    // XOR group plus the parity host).
    mgr.fail_node(1);
    mgr.fail_node(2);
    mgr.fail_node(3);
    mgr.fail_node(4);
    EXPECT_FALSE(mgr.recover().has_value())
        << "scheme " << (scheme == PartnerScheme::kCopy ? "copy" : "xor");
  }
}

TEST(Multilevel, NoCheckpointAnywhereReturnsNullopt) {
  MultilevelManager mgr(small_config(2));
  EXPECT_FALSE(mgr.recover().has_value());

  const auto p1 = make_payloads(2, 1);
  mgr.commit(views(p1));  // id 1: local + partner only (io_every = 2)
  mgr.fail_node(0);
  mgr.fail_node(1);
  EXPECT_FALSE(mgr.recover().has_value());
}

TEST(Multilevel, XorGroupRecoversSingleLossCheaply) {
  auto cfg = small_config(8);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(8, 1);
  mgr.commit(views(p1));

  // Space check: parity is ~1 image per 4-rank group, not 8 full copies.
  std::size_t copy_space = 0;
  {
    auto copy_cfg = cfg;
    copy_cfg.partner_scheme = PartnerScheme::kCopy;
    MultilevelManager copies(copy_cfg);
    copies.commit(views(p1));
    for (std::uint32_t r = 0; r < 8; ++r) {
      copy_space += copies.local_store(r).used_bytes();
    }
  }

  mgr.fail_node(2);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[2], RecoveryLevel::kPartner);
  EXPECT_EQ(rec->payloads[2], p1[2]);
  for (std::uint32_t r = 0; r < 8; ++r) {
    if (r != 2) {
      EXPECT_EQ(rec->levels[r], RecoveryLevel::kLocal);
    }
  }
  (void)copy_space;
}

TEST(Multilevel, XorGroupCannotSurviveTwoLossesInGroup) {
  auto cfg = small_config(8);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;
  cfg.io_every = 1;  // IO backs up everything
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(8, 1);
  mgr.commit(views(p1));

  // Two members of group 0 die: their rebuild needs each other, so both
  // fall through to IO; group 1 (ranks 4-7) is untouched.
  mgr.fail_node(1);
  mgr.fail_node(2);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kIo);
  EXPECT_EQ(rec->levels[2], RecoveryLevel::kIo);
  EXPECT_EQ(rec->payloads[1], p1[1]);
  EXPECT_EQ(rec->payloads[2], p1[2]);
  EXPECT_EQ(rec->levels[5], RecoveryLevel::kLocal);
}

TEST(Multilevel, XorGroupLossesInDifferentGroupsBothRecover) {
  auto cfg = small_config(8);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;
  MultilevelManager mgr(cfg);
  const auto p1 = make_payloads(8, 1);
  mgr.commit(views(p1));

  // Rank 1 (group 0, parity on node 4) and rank 6 (group 1, parity on
  // node 0): independent groups, both rebuild.
  mgr.fail_node(1);
  mgr.fail_node(6);
  const auto rec = mgr.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->levels[1], RecoveryLevel::kPartner);
  EXPECT_EQ(rec->levels[6], RecoveryLevel::kPartner);
  EXPECT_EQ(rec->payloads[1], p1[1]);
  EXPECT_EQ(rec->payloads[6], p1[6]);
}

TEST(Multilevel, XorGroupUnevenPayloadSizes) {
  // Ranks with different image sizes exercise the padding path.
  auto cfg = small_config(8);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;
  std::vector<Bytes> payloads;
  for (std::uint32_t r = 0; r < 8; ++r) {
    payloads.push_back(Bytes(1 + 977 * r % 4096,
                             static_cast<std::byte>(0x10 + r)));
  }
  for (std::uint32_t victim = 0; victim < 8; ++victim) {
    MultilevelManager fresh(cfg);
    fresh.commit(views(payloads));
    fresh.fail_node(victim);
    const auto rec = fresh.recover();
    ASSERT_TRUE(rec.has_value()) << "victim " << victim;
    EXPECT_EQ(rec->payloads[victim], payloads[victim]) << "victim "
                                                       << victim;
  }
}

TEST(Multilevel, XorGroupValidatesGeometry) {
  auto cfg = small_config(4);
  cfg.partner_scheme = PartnerScheme::kXorGroup;
  cfg.xor_group_size = 4;  // spans the whole machine: rejected
  EXPECT_THROW(MultilevelManager{cfg}, std::invalid_argument);
  cfg.xor_group_size = 0;
  EXPECT_THROW(MultilevelManager{cfg}, std::invalid_argument);
}

TEST(Multilevel, CommitValidatesPayloadCount) {
  MultilevelManager mgr(small_config(2));
  const auto p1 = make_payloads(1, 1);
  EXPECT_THROW(mgr.commit(views(p1)), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::ckpt
