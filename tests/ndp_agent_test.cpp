#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "ndp/agent.hpp"

namespace ndpcr::ndp {
namespace {

Bytes compressible_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(4));
  return data;
}

// Reference implementation of the drain's virtual-time model. Overlap
// mode: chunk j's write starts once it is compressed AND the wire is
// free (W_j = max(C_j, W_{j-1}) + w_j); serial mode compresses the whole
// image first and then writes (sum of stages). The container header and
// size table ride on the first write.
double pipeline_model_seconds(const compress::ChunkedCodec& codec,
                              const Bytes& image, double compress_bw,
                              double io_bw, bool overlap) {
  const std::size_t k = codec.chunk_count(image.size());
  double compress_front = 0.0;
  double write_front = 0.0;
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double c =
        static_cast<double>(codec.chunk_extent(image.size(), j).second) /
        compress_bw;
    double bytes =
        static_cast<double>(codec.compress_chunk(image, j).size());
    if (j == 0) {
      bytes += static_cast<double>(compress::ChunkedCodec::header_bytes(k));
    }
    const double w = bytes / io_bw;
    compress_front += c;
    write_front = std::max(compress_front, write_front) + w;
    total += c + w;
  }
  return overlap ? write_front : total;
}

AgentConfig test_config() {
  AgentConfig cfg;
  cfg.uncompressed_capacity = 1 << 20;
  cfg.compressed_capacity = 1 << 20;
  cfg.compress_bw = 1e6;  // 1 MB/s: visible virtual durations
  cfg.io_bw = 0.5e6;
  return cfg;
}

TEST(NdpAgent, DrainsCommittedCheckpointToIo) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  const Bytes image = compressible_image(100 * 1024, 1);
  ASSERT_TRUE(agent.host_commit(1, image));
  EXPECT_TRUE(agent.busy());
  EXPECT_FALSE(agent.newest_on_io().has_value());

  // Pump in pieces: completion only after the full drain duration.
  agent.pump(0.01);
  EXPECT_FALSE(agent.newest_on_io().has_value());
  agent.pump(1e6);
  ASSERT_TRUE(agent.newest_on_io().has_value());
  EXPECT_EQ(agent.newest_on_io().value(), 1u);
  EXPECT_FALSE(agent.busy());

  // The IO copy is the chunked-container image and round-trips.
  const auto packed = io.get(0, 1);
  ASSERT_TRUE(packed.has_value());
  EXPECT_LT(packed->size(), image.size() / 2);
  const compress::ChunkedCodec codec(compress::CodecId::kDeflateStyle, 1);
  EXPECT_EQ(codec.decompress(*packed), image);
}

TEST(NdpAgent, VirtualTimeMatchesPipelineModel) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.chunk_bytes = 32 * 1024;  // several chunks: real pipelining
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(200 * 1024, 2);
  const compress::ChunkedCodec codec(cfg.codec, cfg.codec_level,
                                     cfg.chunk_bytes);
  ASSERT_GT(codec.chunk_count(image.size()), 1u);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  EXPECT_NEAR(consumed,
              pipeline_model_seconds(codec, image, cfg.compress_bw,
                                     cfg.io_bw, /*overlap=*/true),
              1e-9);
  // The landed bytes are the container, bit-exact.
  ASSERT_TRUE(io.get(0, 1).has_value());
  EXPECT_EQ(io.get(0, 1).value(), codec.compress(image));
}

TEST(NdpAgent, OverlapBeatsSerialOnMultiChunkImage) {
  AgentConfig cfg = test_config();
  cfg.chunk_bytes = 32 * 1024;
  const Bytes image = compressible_image(200 * 1024, 12);
  const compress::ChunkedCodec codec(cfg.codec, cfg.codec_level,
                                     cfg.chunk_bytes);

  ckpt::KvStore overlap_io;
  NdpAgent overlap_agent(cfg, overlap_io);
  ASSERT_TRUE(overlap_agent.host_commit(1, image));
  const double overlapped = overlap_agent.pump(1e9);

  cfg.overlap = false;
  ckpt::KvStore serial_io;
  NdpAgent serial_agent(cfg, serial_io);
  ASSERT_TRUE(serial_agent.host_commit(1, image));
  const double serial = serial_agent.pump(1e9);

  EXPECT_NEAR(serial,
              pipeline_model_seconds(codec, image, cfg.compress_bw,
                                     cfg.io_bw, /*overlap=*/false),
              1e-9);
  EXPECT_LT(overlapped, serial);
  // Same bytes on the wire either way.
  EXPECT_EQ(overlap_io.get(0, 1).value(), serial_io.get(0, 1).value());
}

TEST(NdpAgent, SerialModeSumsStages) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.overlap = false;
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(100 * 1024, 3);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  const double compress_time = static_cast<double>(image.size()) / 1e6;
  const double write_time =
      static_cast<double>(io.get(0, 1)->size()) / 0.5e6;
  EXPECT_NEAR(consumed, compress_time + write_time, 1e-9);
}

TEST(NdpAgent, AlwaysDrainsNewestAndSkipsSuperseded) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(50 * 1024, 4)));
  // While 1 drains, 2 and 3 arrive; 2 is superseded by 3.
  ASSERT_TRUE(agent.host_commit(2, compressible_image(50 * 1024, 5)));
  ASSERT_TRUE(agent.host_commit(3, compressible_image(50 * 1024, 6)));
  agent.pump(1e9);
  EXPECT_EQ(agent.newest_on_io().value(), 3u);
  EXPECT_EQ(agent.stats().drains_completed, 2u);  // 1 and 3
  EXPECT_EQ(agent.stats().drains_skipped, 1u);    // 2
  EXPECT_TRUE(io.contains(0, 1));
  EXPECT_FALSE(io.contains(0, 2));
  EXPECT_TRUE(io.contains(0, 3));
}

TEST(NdpAgent, LockedCheckpointSurvivesEvictionPressure) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.uncompressed_capacity = 220 * 1024;  // two 100 KiB images + slack
  NdpAgent agent(cfg, io);
  const Bytes img = compressible_image(100 * 1024, 7);
  ASSERT_TRUE(agent.host_commit(1, img));   // drain of 1 starts, locks it
  ASSERT_TRUE(agent.host_commit(2, img));   // fits alongside
  // 3 would need to evict 1 (locked) - the host must stall.
  EXPECT_FALSE(agent.host_commit(3, img));
  // After the drain completes, 1 unlocks and can be evicted.
  agent.pump(1e9);
  EXPECT_TRUE(agent.host_commit(3, img));
}

TEST(NdpAgent, ResetAbortsDrainAndClearsNvm) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(100 * 1024, 8)));
  agent.pump(0.01);
  agent.reset();
  EXPECT_FALSE(agent.busy());
  EXPECT_EQ(agent.stats().drains_aborted, 1u);
  EXPECT_FALSE(agent.newest_on_io().has_value());
  EXPECT_EQ(agent.uncompressed_partition().count(), 0u);
  // The agent keeps working after the reset.
  ASSERT_TRUE(agent.host_commit(2, compressible_image(100 * 1024, 9)));
  agent.pump(1e9);
  EXPECT_EQ(agent.newest_on_io().value(), 2u);
}

TEST(NdpAgent, RestoreLocalPrefersUncompressed) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  const Bytes image = compressible_image(60 * 1024, 10);
  ASSERT_TRUE(agent.host_commit(1, image));
  // Before the drain finishes: restore from the uncompressed partition.
  EXPECT_EQ(agent.restore_local(1).value(), image);
  agent.pump(1e9);
  // Still restorable after the drain (and via the compressed partition if
  // the uncompressed copy is later evicted).
  EXPECT_EQ(agent.restore_local(1).value(), image);
  EXPECT_FALSE(agent.restore_local(99).has_value());
}

TEST(NdpAgent, UncompressedModeStreamsRawImage) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.codec = compress::CodecId::kNull;
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(50 * 1024, 11);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  EXPECT_NEAR(consumed, static_cast<double>(image.size()) / cfg.io_bw, 1e-9);
  EXPECT_EQ(io.get(0, 1).value(), image);
}

TEST(NdpAgent, PumpIdleConsumesNothing) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  EXPECT_DOUBLE_EQ(agent.pump(100.0), 0.0);
  EXPECT_DOUBLE_EQ(agent.stats().busy_seconds, 0.0);
}

TEST(NdpAgent, InvalidConfigThrows) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.io_bw = 0;
  EXPECT_THROW(NdpAgent(cfg, io), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::ndp
