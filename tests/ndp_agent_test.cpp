#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ndp/agent.hpp"

namespace ndpcr::ndp {
namespace {

Bytes compressible_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(4));
  return data;
}

AgentConfig test_config() {
  AgentConfig cfg;
  cfg.uncompressed_capacity = 1 << 20;
  cfg.compressed_capacity = 1 << 20;
  cfg.compress_bw = 1e6;  // 1 MB/s: visible virtual durations
  cfg.io_bw = 0.5e6;
  return cfg;
}

TEST(NdpAgent, DrainsCommittedCheckpointToIo) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  const Bytes image = compressible_image(100 * 1024, 1);
  ASSERT_TRUE(agent.host_commit(1, image));
  EXPECT_TRUE(agent.busy());
  EXPECT_FALSE(agent.newest_on_io().has_value());

  // Pump in pieces: completion only after the full drain duration.
  agent.pump(0.01);
  EXPECT_FALSE(agent.newest_on_io().has_value());
  agent.pump(1e6);
  ASSERT_TRUE(agent.newest_on_io().has_value());
  EXPECT_EQ(agent.newest_on_io().value(), 1u);
  EXPECT_FALSE(agent.busy());

  // The IO copy is the codec-compressed image and round-trips.
  const auto packed = io.get(0, 1);
  ASSERT_TRUE(packed.has_value());
  EXPECT_LT(packed->size(), image.size() / 2);
  const auto codec = compress::make_codec(compress::CodecId::kDeflateStyle, 1);
  EXPECT_EQ(codec->decompress(*packed), image);
}

TEST(NdpAgent, VirtualTimeMatchesPipelineModel) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(200 * 1024, 2);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  // Overlapped: max(compress at 1 MB/s, compressed write at 0.5 MB/s).
  const double compress_time = static_cast<double>(image.size()) / 1e6;
  ASSERT_TRUE(io.get(0, 1).has_value());
  const double write_time =
      static_cast<double>(io.get(0, 1)->size()) / 0.5e6;
  EXPECT_NEAR(consumed, std::max(compress_time, write_time), 1e-9);
}

TEST(NdpAgent, SerialModeSumsStages) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.overlap = false;
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(100 * 1024, 3);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  const double compress_time = static_cast<double>(image.size()) / 1e6;
  const double write_time =
      static_cast<double>(io.get(0, 1)->size()) / 0.5e6;
  EXPECT_NEAR(consumed, compress_time + write_time, 1e-9);
}

TEST(NdpAgent, AlwaysDrainsNewestAndSkipsSuperseded) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(50 * 1024, 4)));
  // While 1 drains, 2 and 3 arrive; 2 is superseded by 3.
  ASSERT_TRUE(agent.host_commit(2, compressible_image(50 * 1024, 5)));
  ASSERT_TRUE(agent.host_commit(3, compressible_image(50 * 1024, 6)));
  agent.pump(1e9);
  EXPECT_EQ(agent.newest_on_io().value(), 3u);
  EXPECT_EQ(agent.stats().drains_completed, 2u);  // 1 and 3
  EXPECT_EQ(agent.stats().drains_skipped, 1u);    // 2
  EXPECT_TRUE(io.contains(0, 1));
  EXPECT_FALSE(io.contains(0, 2));
  EXPECT_TRUE(io.contains(0, 3));
}

TEST(NdpAgent, LockedCheckpointSurvivesEvictionPressure) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.uncompressed_capacity = 220 * 1024;  // two 100 KiB images + slack
  NdpAgent agent(cfg, io);
  const Bytes img = compressible_image(100 * 1024, 7);
  ASSERT_TRUE(agent.host_commit(1, img));   // drain of 1 starts, locks it
  ASSERT_TRUE(agent.host_commit(2, img));   // fits alongside
  // 3 would need to evict 1 (locked) - the host must stall.
  EXPECT_FALSE(agent.host_commit(3, img));
  // After the drain completes, 1 unlocks and can be evicted.
  agent.pump(1e9);
  EXPECT_TRUE(agent.host_commit(3, img));
}

TEST(NdpAgent, ResetAbortsDrainAndClearsNvm) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(100 * 1024, 8)));
  agent.pump(0.01);
  agent.reset();
  EXPECT_FALSE(agent.busy());
  EXPECT_EQ(agent.stats().drains_aborted, 1u);
  EXPECT_FALSE(agent.newest_on_io().has_value());
  EXPECT_EQ(agent.uncompressed_partition().count(), 0u);
  // The agent keeps working after the reset.
  ASSERT_TRUE(agent.host_commit(2, compressible_image(100 * 1024, 9)));
  agent.pump(1e9);
  EXPECT_EQ(agent.newest_on_io().value(), 2u);
}

TEST(NdpAgent, RestoreLocalPrefersUncompressed) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  const Bytes image = compressible_image(60 * 1024, 10);
  ASSERT_TRUE(agent.host_commit(1, image));
  // Before the drain finishes: restore from the uncompressed partition.
  EXPECT_EQ(agent.restore_local(1).value(), image);
  agent.pump(1e9);
  // Still restorable after the drain (and via the compressed partition if
  // the uncompressed copy is later evicted).
  EXPECT_EQ(agent.restore_local(1).value(), image);
  EXPECT_FALSE(agent.restore_local(99).has_value());
}

TEST(NdpAgent, UncompressedModeStreamsRawImage) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.codec = compress::CodecId::kNull;
  NdpAgent agent(cfg, io);
  const Bytes image = compressible_image(50 * 1024, 11);
  ASSERT_TRUE(agent.host_commit(1, image));
  const double consumed = agent.pump(1e9);
  EXPECT_NEAR(consumed, static_cast<double>(image.size()) / cfg.io_bw, 1e-9);
  EXPECT_EQ(io.get(0, 1).value(), image);
}

TEST(NdpAgent, PumpIdleConsumesNothing) {
  ckpt::KvStore io;
  NdpAgent agent(test_config(), io);
  EXPECT_DOUBLE_EQ(agent.pump(100.0), 0.0);
  EXPECT_DOUBLE_EQ(agent.stats().busy_seconds, 0.0);
}

TEST(NdpAgent, InvalidConfigThrows) {
  ckpt::KvStore io;
  AgentConfig cfg = test_config();
  cfg.io_bw = 0;
  EXPECT_THROW(NdpAgent(cfg, io), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::ndp
