#include <gtest/gtest.h>

#include <tuple>

#include "ckpt/reed_solomon.hpp"
#include "common/rng.hpp"

namespace ndpcr::ckpt {
namespace {

TEST(Gf256, FieldAxioms) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(a, gf256::mul(b, c)),
              gf256::mul(gf256::mul(a, b), c));
    // Distributivity over xor.
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
    EXPECT_EQ(gf256::mul(a, 1), a);
    EXPECT_EQ(gf256::mul(a, 0), 0);
    if (a != 0) {
      EXPECT_EQ(gf256::mul(a, gf256::inv(a)), 1);
    }
  }
  EXPECT_THROW(gf256::inv(0), std::domain_error);
}

std::vector<Bytes> random_shards(int k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> shards(k, Bytes(len));
  for (auto& shard : shards) {
    for (auto& b : shard) b = static_cast<std::byte>(rng.next_below(256));
  }
  return shards;
}

using RsParam = std::tuple<int, int>;  // (k, m)

class ReedSolomonTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonTest, SurvivesEveryParityShardLossPattern) {
  const auto [k, m] = GetParam();
  const ReedSolomon rs(k, m);
  const auto data = random_shards(k, 512, k * 100 + m);
  const auto parity = rs.encode(data);
  ASSERT_EQ(static_cast<int>(parity.size()), m);

  // All shards present, then erase up to m shards in rotating patterns.
  std::vector<std::optional<Bytes>> shards;
  for (const auto& s : data) shards.emplace_back(s);
  for (const auto& s : parity) shards.emplace_back(s);

  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    auto damaged = shards;
    // Erase exactly m shards (the maximum tolerable), chosen at random.
    int erased = 0;
    while (erased < m) {
      const auto victim = rng.next_below(damaged.size());
      if (damaged[victim].has_value()) {
        damaged[victim].reset();
        ++erased;
      }
    }
    const auto rebuilt = rs.reconstruct(damaged);
    ASSERT_EQ(static_cast<int>(rebuilt.size()), k);
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(rebuilt[j], data[j]) << "trial " << trial << " shard " << j;
    }
  }
}

TEST_P(ReedSolomonTest, TooManyLossesRejected) {
  const auto [k, m] = GetParam();
  const ReedSolomon rs(k, m);
  const auto data = random_shards(k, 64, 5);
  const auto parity = rs.encode(data);
  std::vector<std::optional<Bytes>> shards;
  for (const auto& s : data) shards.emplace_back(s);
  for (const auto& s : parity) shards.emplace_back(s);
  // Erase m + 1 shards.
  for (int i = 0; i <= m; ++i) shards[i].reset();
  EXPECT_THROW((void)rs.reconstruct(shards), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ReedSolomonTest,
                         ::testing::Values(RsParam{1, 1}, RsParam{2, 1},
                                           RsParam{4, 2}, RsParam{8, 3},
                                           RsParam{10, 4}),
                         [](const auto& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) +
                                  "m" + std::to_string(std::get<1>(info.param));
                         });

TEST(ReedSolomon, SingleParityMatchesXorProtectionLevel) {
  // m = 1 tolerates exactly one loss, like the XOR partner-group scheme
  // of stores.hpp (the parity row's coefficients differ from plain XOR,
  // but the protection level is the same).
  const ReedSolomon rs(4, 1);
  const auto data = random_shards(4, 256, 7);
  const auto parity = rs.encode(data);
  for (int victim = 0; victim < 4; ++victim) {
    std::vector<std::optional<Bytes>> shards;
    for (const auto& s : data) shards.emplace_back(s);
    shards.emplace_back(parity[0]);
    shards[victim].reset();
    EXPECT_EQ(rs.reconstruct(shards)[victim], data[victim]);
  }
}

TEST(ReedSolomon, SystematicDataPassthrough) {
  // Surviving data shards come back byte-identical without decoding.
  const ReedSolomon rs(3, 2);
  const auto data = random_shards(3, 128, 8);
  const auto parity = rs.encode(data);
  std::vector<std::optional<Bytes>> shards = {data[0], std::nullopt,
                                              data[2], parity[0],
                                              std::nullopt};
  const auto rebuilt = rs.reconstruct(shards);
  EXPECT_EQ(rebuilt[0], data[0]);
  EXPECT_EQ(rebuilt[1], data[1]);
  EXPECT_EQ(rebuilt[2], data[2]);
}

TEST(ReedSolomon, ValidatesInputs) {
  EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 56), std::invalid_argument);
  const ReedSolomon rs(2, 1);
  EXPECT_THROW((void)rs.encode(random_shards(3, 8, 1)),
               std::invalid_argument);
  auto uneven = random_shards(2, 8, 2);
  uneven[1].resize(9);
  EXPECT_THROW((void)rs.encode(uneven), std::invalid_argument);
  std::vector<std::optional<Bytes>> wrong_count(2);
  EXPECT_THROW((void)rs.reconstruct(wrong_count), std::invalid_argument);
}

TEST(ReedSolomon, LargeGroupStress) {
  const ReedSolomon rs(16, 4);
  const auto data = random_shards(16, 1024, 99);
  const auto parity = rs.encode(data);
  std::vector<std::optional<Bytes>> shards;
  for (const auto& s : data) shards.emplace_back(s);
  for (const auto& s : parity) shards.emplace_back(s);
  // Kill 4 data shards.
  shards[1].reset();
  shards[5].reset();
  shards[9].reset();
  shards[14].reset();
  const auto rebuilt = rs.reconstruct(shards);
  for (int j = 0; j < 16; ++j) EXPECT_EQ(rebuilt[j], data[j]);
}

}  // namespace
}  // namespace ndpcr::ckpt
