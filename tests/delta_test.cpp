#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "delta/delta.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr::delta {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  return data;
}

TEST(BlockHash, DeterministicAndSensitive) {
  const Bytes a = random_bytes(512, 1);
  Bytes b = a;
  EXPECT_EQ(block_hash(a), block_hash(b));
  b[100] ^= std::byte{0x01};
  EXPECT_NE(block_hash(a), block_hash(b));
  EXPECT_EQ(block_hash({}), block_hash({}));
}

TEST(DeltaCodec, IdenticalImagesCollapse) {
  const Bytes image = random_bytes(64 * 1024, 2);
  DeltaCodec codec(4096);
  DeltaStats stats;
  const Bytes delta = codec.encode(image, image, &stats);
  EXPECT_EQ(stats.literal_blocks, 0u);
  EXPECT_EQ(stats.unchanged_blocks, 16u);
  EXPECT_GT(stats.delta_factor(), 0.99);
  EXPECT_EQ(codec.decode(image, delta), image);
}

TEST(DeltaCodec, EmptyReferenceIsAllLiterals) {
  const Bytes image = random_bytes(10000, 3);
  DeltaCodec codec(1024);
  DeltaStats stats;
  const Bytes delta = codec.encode({}, image, &stats);
  EXPECT_EQ(stats.unchanged_blocks, 0u);
  EXPECT_EQ(stats.moved_blocks, 0u);
  EXPECT_EQ(stats.literal_blocks, 10u);  // 9 full + 1 tail
  EXPECT_EQ(codec.decode({}, delta), image);
}

TEST(DeltaCodec, SparseUpdateProducesSmallDelta) {
  Bytes reference = random_bytes(256 * 1024, 4);
  Bytes current = reference;
  // Touch 3 scattered blocks (the incremental-checkpoint case).
  current[10] ^= std::byte{1};
  current[100000] ^= std::byte{1};
  current[200000] ^= std::byte{1};
  DeltaCodec codec(4096);
  DeltaStats stats;
  const Bytes delta = codec.encode(reference, current, &stats);
  EXPECT_EQ(stats.literal_blocks, 3u);
  EXPECT_LT(delta.size(), 4 * 4096u);
  EXPECT_EQ(codec.decode(reference, delta), current);
}

TEST(DeltaCodec, DetectsMovedBlocks) {
  // Current = reference with two full blocks swapped: move ops, not
  // literals.
  const std::size_t bs = 1024;
  Bytes reference = random_bytes(8 * bs, 5);
  Bytes current = reference;
  std::swap_ranges(current.begin(), current.begin() + bs,
                   current.begin() + 4 * bs);
  DeltaCodec codec(bs);
  DeltaStats stats;
  const Bytes delta = codec.encode(reference, current, &stats);
  EXPECT_EQ(stats.literal_blocks, 0u);
  EXPECT_EQ(stats.moved_blocks, 2u);
  EXPECT_EQ(codec.decode(reference, delta), current);
}

TEST(DeltaCodec, HandlesGrowthAndShrinkage) {
  DeltaCodec codec(512);
  const Bytes reference = random_bytes(5000, 6);
  Bytes grown = reference;
  const Bytes extra = random_bytes(3000, 7);
  grown.insert(grown.end(), extra.begin(), extra.end());
  EXPECT_EQ(codec.decode(reference, codec.encode(reference, grown)), grown);

  const Bytes shrunk(reference.begin(), reference.begin() + 1234);
  EXPECT_EQ(codec.decode(reference, codec.encode(reference, shrunk)),
            shrunk);
  const Bytes empty;
  EXPECT_EQ(codec.decode(reference, codec.encode(reference, empty)), empty);
}

TEST(DeltaCodec, RejectsWrongReference) {
  const Bytes ref_a = random_bytes(8192, 8);
  const Bytes ref_b = random_bytes(8192, 9);
  const Bytes current = random_bytes(8192, 10);
  DeltaCodec codec(1024);
  const Bytes delta = codec.encode(ref_a, current);
  EXPECT_THROW((void)codec.decode(ref_b, delta), DeltaError);
}

TEST(DeltaCodec, RejectsMalformedStreams) {
  DeltaCodec codec(1024);
  const Bytes reference = random_bytes(4096, 11);
  const Bytes delta = codec.encode(reference, reference);
  // Truncations at every prefix must throw, never crash.
  for (std::size_t cut = 0; cut < delta.size(); ++cut) {
    EXPECT_THROW((void)codec.decode(reference, ByteSpan(delta.data(), cut)),
                 DeltaError)
        << "cut=" << cut;
  }
  // Block-size mismatch.
  DeltaCodec other(2048);
  EXPECT_THROW((void)other.decode(reference, delta), DeltaError);
  EXPECT_THROW(DeltaCodec(0), DeltaError);
}

TEST(DeltaCodec, ConsecutiveMiniAppCheckpointsAreHighlyRedundant) {
  // The conclusion's premise: consecutive checkpoints of a real workload
  // share most of their content (here: index structures and slowly-
  // changing fields).
  auto app = workloads::make_miniapp("hpccg", 512 * 1024, 12);
  app->step();
  const Bytes first = app->checkpoint();
  app->step();
  const Bytes second = app->checkpoint();

  DeltaCodec codec(4096);
  DeltaStats stats;
  const Bytes delta = codec.encode(first, second, &stats);
  EXPECT_GT(stats.delta_factor(), 0.3);
  EXPECT_EQ(codec.decode(first, delta), second);
}

TEST(DedupStore, SharedBlocksStoredOnce) {
  DedupStore store(1024);
  const Bytes image = random_bytes(16 * 1024, 13);
  const auto s1 = store.put(0, 1, image);
  EXPECT_EQ(s1.new_block_bytes, image.size());
  // Identical image from a neighboring rank: zero new payload.
  const auto s2 = store.put(1, 1, image);
  EXPECT_EQ(s2.new_block_bytes, 0u);
  EXPECT_EQ(store.unique_blocks(), 16u);
  EXPECT_EQ(store.logical_bytes(), 2 * image.size());
  EXPECT_NEAR(store.dedup_factor(), 0.5, 1e-9);
  EXPECT_EQ(store.get(0, 1).value(), image);
  EXPECT_EQ(store.get(1, 1).value(), image);
}

TEST(DedupStore, RefcountingSurvivesErase) {
  DedupStore store(1024);
  const Bytes image = random_bytes(8 * 1024, 14);
  store.put(0, 1, image);
  store.put(1, 1, image);
  store.erase(0, 1);
  EXPECT_FALSE(store.get(0, 1).has_value());
  EXPECT_EQ(store.get(1, 1).value(), image);  // blocks still alive
  store.erase(1, 1);
  EXPECT_EQ(store.unique_blocks(), 0u);
  EXPECT_EQ(store.stored_block_bytes(), 0u);
  store.erase(5, 5);  // unknown: no-op
}

TEST(DedupStore, PartialOverlapAccounted) {
  DedupStore store(1024);
  Bytes a = random_bytes(8 * 1024, 15);
  Bytes b = a;
  // Rewrite half the blocks of b.
  for (std::size_t i = 0; i < 4 * 1024; ++i) b[i] ^= std::byte{0x5A};
  store.put(0, 1, a);
  const auto stats = store.put(0, 2, b);
  EXPECT_EQ(stats.new_block_bytes, 4 * 1024u);
  EXPECT_EQ(store.get(0, 1).value(), a);
  EXPECT_EQ(store.get(0, 2).value(), b);
}

TEST(DedupStore, TailBlocksAndOddSizes) {
  DedupStore store(1000);
  const Bytes image = random_bytes(2500, 16);  // 2 full blocks + 500 tail
  store.put(3, 7, image);
  EXPECT_EQ(store.get(3, 7).value(), image);
  EXPECT_EQ(store.unique_blocks(), 3u);
}

TEST(DedupStore, RePutReplaces) {
  DedupStore store(1024);
  const Bytes v1 = random_bytes(4096, 17);
  const Bytes v2 = random_bytes(4096, 18);
  store.put(0, 1, v1);
  store.put(0, 1, v2);
  EXPECT_EQ(store.get(0, 1).value(), v2);
  EXPECT_EQ(store.logical_bytes(), v2.size());
}

TEST(DeltaScratch, ScratchEncodeIsBitIdenticalToPlain) {
  DeltaCodec codec(1024);
  DeltaScratch scratch;
  // Mixed sizes exercise index growth and reuse (shrinking reference).
  const std::size_t sizes[] = {100000, 5000, 0, 64 * 1024, 1023};
  Bytes reference;
  std::uint64_t seed = 40;
  for (const std::size_t n : sizes) {
    Bytes current = random_bytes(n, ++seed);
    // Make runs partially redundant against the reference.
    const std::size_t shared = std::min(reference.size(), current.size()) / 2;
    std::copy(reference.begin(),
              reference.begin() + static_cast<std::ptrdiff_t>(shared),
              current.begin());
    DeltaStats plain_stats, scratch_stats;
    const Bytes plain = codec.encode(reference, current, &plain_stats);
    const Bytes reused =
        codec.encode(reference, current, scratch, &scratch_stats);
    EXPECT_EQ(plain, reused);
    EXPECT_EQ(plain_stats.encoded_bytes, scratch_stats.encoded_bytes);
    EXPECT_EQ(plain_stats.moved_blocks, scratch_stats.moved_blocks);
    EXPECT_EQ(codec.decode(reference, reused), current);
    reference = std::move(current);
  }
}

TEST(DeltaScratch, PoolLeasesAreReusable) {
  DeltaScratchPool pool;
  pool.warm(2);
  const Bytes a = random_bytes(8192, 50);
  const Bytes b = random_bytes(8192, 51);
  DeltaCodec codec(512);
  Bytes first, second;
  {
    auto lease = pool.acquire();
    first = codec.encode(a, b, *lease);
  }
  {
    auto lease = pool.acquire();  // same workspace, recycled
    second = codec.encode(a, b, *lease);
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(codec.decode(a, first), b);
}

TEST(DeltaCodec, StreamBlockSizeRecovered) {
  const Bytes image = random_bytes(4096, 60);
  for (const std::size_t bs : {256u, 1024u, 4096u}) {
    const Bytes delta = DeltaCodec(bs).encode({}, image);
    EXPECT_EQ(DeltaCodec::stream_block_size(delta), bs);
  }
  EXPECT_THROW((void)DeltaCodec::stream_block_size(Bytes(2)), DeltaError);
}

TEST(Cdc, BoundariesCoverInputAndRespectLimits) {
  const CdcParams params{64, 256, 1024};
  const Bytes data = random_bytes(50000, 70);
  const auto bounds = cdc_boundaries(data, params);
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.back(), data.size());
  std::size_t start = 0;
  for (const std::size_t end : bounds) {
    const std::size_t len = end - start;
    EXPECT_GT(len, 0u);
    EXPECT_LE(len, params.max_bytes);
    // Every chunk but the last honors the minimum.
    if (end != data.size()) {
      EXPECT_GE(len, params.min_bytes);
    }
    start = end;
  }
  EXPECT_TRUE(cdc_boundaries({}, params).empty());
}

TEST(Cdc, BoundariesShiftWithContent) {
  // Insert bytes near the front: fixed-block chunking would re-key every
  // later block; CDC boundaries realign after the insertion point.
  const CdcParams params{64, 256, 1024};
  const Bytes original = random_bytes(16 * 1024, 71);
  Bytes shifted;
  shifted.reserve(original.size() + 5);
  shifted.insert(shifted.end(), 5, std::byte{0xEE});
  shifted.insert(shifted.end(), original.begin(), original.end());

  auto chunk_set = [&](const Bytes& data) {
    std::vector<std::uint64_t> hashes;
    std::size_t start = 0;
    for (const std::size_t end : cdc_boundaries(data, params)) {
      hashes.push_back(block_hash(ByteSpan(data).subspan(start, end - start)));
      start = end;
    }
    return hashes;
  };
  const auto a = chunk_set(original);
  const auto b = chunk_set(shifted);
  std::size_t common = 0;
  for (const auto h : b) {
    for (const auto g : a) {
      if (h == g) {
        ++common;
        break;
      }
    }
  }
  // Most of the shifted image's chunks still match the original's.
  EXPECT_GT(common * 2, b.size());
}

TEST(Cdc, RejectsBadParameters) {
  const Bytes data = random_bytes(1024, 72);
  EXPECT_THROW((void)cdc_boundaries(data, {0, 256, 1024}), DeltaError);
  EXPECT_THROW((void)cdc_boundaries(data, {64, 300, 1024}), DeltaError);
  EXPECT_THROW((void)cdc_boundaries(data, {512, 256, 256}), DeltaError);
}

}  // namespace
}  // namespace ndpcr::delta
