#include <gtest/gtest.h>

#include "study/compression_study.hpp"

namespace ndpcr::study {
namespace {

TEST(PaperConstants, Table2AveragesMatchThePaper) {
  // The paper's "Average" row: factors 72.8 ... 64.8, speeds 110.1 ... 441.9.
  EXPECT_NEAR(paper_average_factor(0), 0.728, 0.002);  // gzip(1)
  EXPECT_NEAR(paper_average_factor(1), 0.747, 0.002);  // gzip(6)
  EXPECT_NEAR(paper_average_factor(2), 0.755, 0.002);  // bzip2(1)
  EXPECT_NEAR(paper_average_factor(3), 0.763, 0.002);  // bzip2(9)
  EXPECT_NEAR(paper_average_factor(4), 0.806, 0.002);  // xz(1)
  EXPECT_NEAR(paper_average_factor(5), 0.833, 0.002);  // xz(6)
  EXPECT_NEAR(paper_average_factor(6), 0.648, 0.002);  // lz4(1)

  EXPECT_NEAR(paper_average_speed_mbps(0), 110.1, 0.5);
  EXPECT_NEAR(paper_average_speed_mbps(6), 441.9, 1.0);
}

TEST(PaperConstants, PerAppGzip1Factors) {
  EXPECT_DOUBLE_EQ(paper_gzip1_factor("comd"), 0.842);
  EXPECT_DOUBLE_EQ(paper_gzip1_factor("minismac"), 0.350);
  EXPECT_DOUBLE_EQ(paper_gzip1_factor("phpccg"), 0.891);
  EXPECT_THROW(paper_gzip1_factor("lammps"), std::out_of_range);
}

TEST(PaperConstants, SevenRowsSevenCodecs) {
  EXPECT_EQ(paper_table2().size(), 7u);
  EXPECT_THROW(paper_average_factor(7), std::out_of_range);
}

TEST(Study, RunsOnSmallInputsAndRoundTrips) {
  StudyConfig cfg;
  cfg.bytes_per_app = 96 * 1024;
  cfg.checkpoints_per_app = 1;
  cfg.steps_between_checkpoints = 1;
  cfg.apps = {"comd", "minismac"};
  cfg.codecs = {{compress::CodecId::kLz4Style, 1, "nlz4(1)"},
                {compress::CodecId::kDeflateStyle, 1, "ngzip(1)"}};
  const StudyResults results = run_compression_study(cfg);
  ASSERT_EQ(results.rows.size(), 4u);  // 2 apps x 2 codecs

  for (const auto& m : results.rows) {
    EXPECT_GT(m.input_bytes, 0u);
    EXPECT_GT(m.compressed_bytes, 0u);
    EXPECT_GT(m.compress_bw, 0.0);
    EXPECT_GT(m.decompress_bw, 0.0);
    EXPECT_LT(m.factor, 1.0);
  }

  // The Table 2 shape: comd compresses far better than minismac.
  const auto* comd = results.find("comd", "ngzip(1)");
  const auto* smac = results.find("minismac", "ngzip(1)");
  ASSERT_NE(comd, nullptr);
  ASSERT_NE(smac, nullptr);
  EXPECT_GT(comd->factor, smac->factor + 0.2);

  EXPECT_EQ(results.find("comd", "nxz(9)"), nullptr);
}

TEST(Study, AveragesAggregateAcrossApps) {
  StudyConfig cfg;
  cfg.bytes_per_app = 64 * 1024;
  cfg.checkpoints_per_app = 1;
  cfg.apps = {"hpccg", "minimd"};
  cfg.codecs = {{compress::CodecId::kLz4Style, 1, "nlz4(1)"}};
  const StudyResults results = run_compression_study(cfg);
  const double avg = results.average_factor("nlz4(1)");
  const double a = results.find("hpccg", "nlz4(1)")->factor;
  const double b = results.find("minimd", "nlz4(1)")->factor;
  EXPECT_DOUBLE_EQ(avg, (a + b) / 2.0);
  EXPECT_GT(results.average_compress_bw("nlz4(1)"), 0.0);
  EXPECT_THROW(results.average_factor("nope"), std::out_of_range);
}

TEST(Study, StrongerCodecsCompressBetter) {
  // Family ordering on the same checkpoint data: nxz >= ngzip >= nlz4.
  StudyConfig cfg;
  cfg.bytes_per_app = 128 * 1024;
  cfg.checkpoints_per_app = 1;
  cfg.apps = {"minife"};
  cfg.codecs = {{compress::CodecId::kLz4Style, 1, "nlz4(1)"},
                {compress::CodecId::kDeflateStyle, 6, "ngzip(6)"},
                {compress::CodecId::kXzStyle, 6, "nxz(6)"}};
  const StudyResults results = run_compression_study(cfg);
  const double lz4 = results.find("minife", "nlz4(1)")->factor;
  const double gzip = results.find("minife", "ngzip(6)")->factor;
  const double xz = results.find("minife", "nxz(6)")->factor;
  EXPECT_GE(gzip, lz4);
  EXPECT_GE(xz, gzip - 0.02);  // allow a hair of slack
  // And the speed ordering is the reverse.
  const double lz4_bw = results.find("minife", "nlz4(1)")->compress_bw;
  const double xz_bw = results.find("minife", "nxz(6)")->compress_bw;
  EXPECT_GT(lz4_bw, xz_bw);
}

}  // namespace
}  // namespace ndpcr::study
