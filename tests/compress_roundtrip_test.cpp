// Randomized round-trip and adversarial-input coverage for every registered
// codec at every level, plus targeted regressions for the pointer-based
// decode kernels (which write into pre-sized buffers and must therefore
// bound every copy against the declared output size, not just the input).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "compress/codec.hpp"
#include "compress/lz4_style.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

struct CodecCfg {
  const char* name;
  std::vector<int> levels;
};

// Every constructible (codec, level) pair in the registry.
const std::vector<CodecCfg>& all_codecs() {
  static const std::vector<CodecCfg> cfgs = {
      {"null", {0}},
      {"rle", {0}},
      {"nlz4", {1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {"ngzip", {1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {"nbzip2", {1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {"nxz", {1, 2, 3, 4, 5, 6, 7, 8, 9}},
  };
  return cfgs;
}

// Seeded payload with tunable redundancy: stretches of small-alphabet
// bytes (compressible) interleaved with full-range bytes (not), plus
// occasional long runs to exercise RLE/match paths.
Bytes fuzz_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data;
  data.reserve(size);
  while (data.size() < size) {
    const std::size_t burst =
        std::min<std::size_t>(1 + rng.next_below(97), size - data.size());
    switch (rng.next_below(4)) {
      case 0: {  // long run
        const auto b = static_cast<std::byte>(rng.next_below(256));
        data.insert(data.end(), burst, b);
        break;
      }
      case 1:  // small alphabet
        for (std::size_t i = 0; i < burst; ++i)
          data.push_back(static_cast<std::byte>(rng.next_below(4)));
        break;
      default:  // full range
        for (std::size_t i = 0; i < burst; ++i)
          data.push_back(static_cast<std::byte>(rng.next_u64()));
        break;
    }
  }
  return data;
}

void expect_roundtrip(const Codec& codec, ByteSpan input,
                      CodecScratch& scratch) {
  const Bytes packed = codec.compress(input, scratch);
  const Bytes back = codec.decompress(packed, scratch);
  ASSERT_EQ(back.size(), input.size());
  EXPECT_TRUE(std::equal(back.begin(), back.end(), input.begin()));
}

TEST(CompressRoundTrip, EveryCodecEveryLevelSeededPayloads) {
  CodecScratch scratch;  // shared across all pairs, like a pooled worker's
  std::uint64_t seed = 0x5EED;
  for (const auto& cfg : all_codecs()) {
    for (int level : cfg.levels) {
      const auto codec = make_codec(cfg.name, level);
      for (std::size_t size : {std::size_t{0}, std::size_t{1},
                               std::size_t{1337}, std::size_t{16 * 1024}}) {
        SCOPED_TRACE(std::string(cfg.name) + " level " +
                     std::to_string(level) + " size " + std::to_string(size));
        expect_roundtrip(*codec, fuzz_payload(size, seed++), scratch);
      }
    }
  }
}

TEST(CompressRoundTrip, TruncationNeverCrashesOrMisdecodes) {
  // Chop each framed stream at every prefix length (stride 3 to bound
  // runtime, plus the last 64 lengths exhaustively, where the interesting
  // end-of-stream states live). Every prefix must either throw CodecError
  // or round-trip exactly; anything else (crash, OOB write under the
  // sanitizer jobs, silent wrong bytes) is a decoder bug.
  CodecScratch scratch;
  const Bytes input = fuzz_payload(6 * 1024, 42);
  for (const auto& cfg : all_codecs()) {
    const auto codec = make_codec(cfg.name, cfg.levels[0]);
    const Bytes packed = codec->compress(input, scratch);
    auto check_prefix = [&](std::size_t len) {
      SCOPED_TRACE(std::string(cfg.name) + " truncated to " +
                   std::to_string(len) + "/" + std::to_string(packed.size()));
      try {
        const Bytes back =
            codec->decompress(ByteSpan(packed).first(len), scratch);
        EXPECT_TRUE(back.size() == input.size() &&
                    std::equal(back.begin(), back.end(), input.begin()));
      } catch (const CodecError&) {
        // Expected for nearly every prefix.
      }
    };
    const std::size_t tail_start =
        packed.size() > 64 ? packed.size() - 64 : 0;
    for (std::size_t len = 0; len < tail_start; len += 3) check_prefix(len);
    for (std::size_t len = tail_start; len <= packed.size(); ++len) {
      check_prefix(len);
    }
  }
}

TEST(CompressRoundTrip, Lz4LiteralRunBeyondDeclaredSizeThrows) {
  // Regression: a frame can declare a small original size while its payload
  // encodes a longer literal run. The pointer-based decoder memcpys
  // literals into a buffer sized from the header, so it must reject the
  // run *before* copying, not discover the overflow afterwards.
  Bytes frame;
  frame.push_back(static_cast<std::byte>('N'));
  frame.push_back(static_cast<std::byte>(CodecId::kLz4Style));
  frame.push_back(std::byte{1});                 // level
  append_le<std::uint64_t>(frame, 5);            // declared original size
  append_le<std::uint32_t>(frame, 0xDEADBEEFu);  // CRC (never reached)
  frame.push_back(std::byte{0xF0});              // token: 15 literals, ...
  frame.push_back(std::byte{5});                 // ... extended to 20
  frame.insert(frame.end(), 20, std::byte{0x41});
  const Lz4StyleCodec codec(1);
  try {
    const Bytes out = codec.decompress(frame);
    FAIL() << "decoded " << out.size() << " bytes from an overflowing frame";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("literals overflow"),
              std::string::npos)
        << e.what();
  }
}

TEST(CompressRoundTrip, Lz4AcceleratedModeRoundTrips) {
  // Acceleration trades ratio for speed and is opt-in precisely because it
  // changes the emitted bytes; it must still round-trip through the
  // unchanged decoder, including when the probe strides past the end of
  // the input.
  CodecScratch scratch;
  const Lz4StyleCodec plain(1);
  const Lz4StyleCodec fast(1, /*accelerate=*/true);
  std::uint64_t seed = 0xACCE1;
  for (std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{4096},
        std::size_t{64 * 1024}}) {
    SCOPED_TRACE("size " + std::to_string(size));
    const Bytes input = fuzz_payload(size, seed++);
    expect_roundtrip(fast, input, scratch);
    // Incompressible data is where the skip heuristic engages hardest.
    Rng rng(seed++);
    Bytes noise(size);
    for (auto& b : noise) b = static_cast<std::byte>(rng.next_u64());
    expect_roundtrip(fast, noise, scratch);
    // Sanity: both modes agree on content, not necessarily on bytes.
    EXPECT_EQ(plain.decompress(plain.compress(input)), input);
  }
}

TEST(CompressRoundTrip, ChunkedAcceleratedRoundTripsAcrossThreadCounts) {
  const Bytes input = fuzz_payload(200 * 1024, 77);
  Bytes reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    const ChunkedCodec cc(CodecId::kLz4Style, 1, 16 * 1024, threads,
                          /*accelerate=*/true);
    const Bytes packed = cc.compress(input);
    if (threads == 1) {
      reference = packed;
    } else {
      // Thread count is an execution detail even in accelerated mode.
      EXPECT_EQ(packed, reference);
    }
    EXPECT_EQ(cc.decompress(packed), input);
  }
  EXPECT_THROW(ChunkedCodec(CodecId::kDeflateStyle, 1, 16 * 1024, 1,
                            /*accelerate=*/true),
               CodecError);
}

TEST(CompressRoundTrip, ImplausibleDeclaredSizeIsRejectedBeforeAllocating) {
  // A corrupted header must raise CodecError instead of attempting a
  // TiB-scale eager allocation (robustness tests flip header bytes; the
  // size field at offsets 3..10 is the dangerous one).
  Bytes frame;
  frame.push_back(static_cast<std::byte>('N'));
  frame.push_back(static_cast<std::byte>(CodecId::kLz4Style));
  frame.push_back(std::byte{1});
  append_le<std::uint64_t>(frame, 1ull << 40);  // 1 TiB declared
  append_le<std::uint32_t>(frame, 0);
  frame.push_back(std::byte{0});  // tiny payload
  const Lz4StyleCodec codec(1);
  EXPECT_THROW((void)codec.decompress(frame), CodecError);
}

}  // namespace
}  // namespace ndpcr::compress
