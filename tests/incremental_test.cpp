#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ckpt/dedup_level.hpp"
#include "ckpt/multilevel.hpp"
#include "common/rng.hpp"
#include "delta/delta.hpp"
#include "ndp/agent.hpp"

// Integrated incremental-checkpointing tests (docs/DELTA.md): delta
// chains and block dedup on the real commit path, chain-aware recovery,
// and the NDP agent's delta drain mode.

namespace ndpcr::ckpt {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  return data;
}

// Sparse-update workload: per-rank persistent state; each step rewrites
// one contiguous ~fraction-sized region (a hot region, the regime where
// incremental checkpointing pays off). The whole payload history is
// materialized so two managers can replay the identical sequence.
std::vector<std::vector<Bytes>> sparse_history(std::uint32_t ranks,
                                               std::size_t bytes,
                                               std::uint32_t commits,
                                               double fraction,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> state;
  state.reserve(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    state.push_back(random_bytes(bytes, seed + r + 1));
  }
  std::vector<std::vector<Bytes>> history;
  history.reserve(commits);
  for (std::uint32_t c = 0; c < commits; ++c) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const auto span = std::max<std::uint64_t>(
          16, static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                         fraction));
      const auto start = rng.next_below(bytes - span + 1);
      for (std::uint64_t t = 0; t < span; ++t) {
        state[r][start + t] = static_cast<std::byte>(rng.next_below(256));
      }
    }
    history.push_back(state);
  }
  return history;
}

std::vector<ByteSpan> views_of(const std::vector<Bytes>& payloads) {
  return std::vector<ByteSpan>(payloads.begin(), payloads.end());
}

MultilevelConfig incremental_config(std::uint32_t ranks) {
  MultilevelConfig mc;
  mc.node_count = ranks;
  mc.nvm_capacity_bytes = 1ull << 20;
  mc.partner_every = 1;
  mc.io_every = 1;
  mc.delta.enabled = true;
  mc.delta.chain_length = 4;
  mc.delta.block_bytes = 256;
  mc.delta.io_dedup = true;
  mc.delta.cdc = {256, 512, 1024};
  mc.delta.nvm_dedup_block_bytes = 256;
  return mc;
}

TEST(Incremental, ChainCadenceForcesPeriodicFulls) {
  auto mc = incremental_config(2);
  mc.delta.chain_length = 3;
  MultilevelManager manager(mc);
  const auto history = sparse_history(2, 8192, 10, 0.01, 11);
  for (const auto& payloads : history) {
    manager.commit(views_of(payloads));
  }
  // Pattern with chain_length 3: F D D D F D D D F D.
  const DataPathStats& d = manager.data_path();
  EXPECT_EQ(d.commits_full, 3u);
  EXPECT_EQ(d.commits_delta, 7u);
  EXPECT_GT(d.delta_factor(), 0.8);  // sparse updates collapse

  const auto recovery = manager.recover();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint_id, 10u);
  EXPECT_EQ(recovery->payloads, history.back());
  EXPECT_GT(manager.data_path().chain_replays, 0u);
}

TEST(Incremental, DeltaDedupMovesFarFewerBytesToIo) {
  const std::uint32_t ranks = 4;
  const auto history = sparse_history(ranks, 32 * 1024, 10, 0.005, 23);

  auto on_cfg = incremental_config(ranks);
  auto off_cfg = incremental_config(ranks);
  off_cfg.delta = DeltaPolicy{};  // full images, no dedup
  MultilevelManager on(on_cfg);
  MultilevelManager off(off_cfg);
  for (const auto& payloads : history) {
    on.commit(views_of(payloads));
    off.commit(views_of(payloads));
  }

  const auto& don = on.data_path();
  const auto& doff = off.data_path();
  ASSERT_GT(don.io_bytes_written, 0u);
  ASSERT_GT(doff.io_bytes_written, 0u);
  // The acceptance bar: a 10-commit sparse-update workload moves at
  // least 5x fewer bytes to the IO level with delta + dedup on.
  EXPECT_GE(static_cast<double>(doff.io_bytes_written) /
                static_cast<double>(don.io_bytes_written),
            5.0);
  EXPECT_GT(don.dedup_hit_rate(), 0.0);

  // And both recover the identical final state.
  const auto ron = on.recover();
  const auto roff = off.recover();
  ASSERT_TRUE(ron.has_value());
  ASSERT_TRUE(roff.has_value());
  EXPECT_EQ(ron->checkpoint_id, roff->checkpoint_id);
  EXPECT_EQ(ron->payloads, history.back());
  EXPECT_EQ(roff->payloads, history.back());
}

TEST(Incremental, CorruptChainLinkFallsBackToPartner) {
  auto mc = incremental_config(2);
  MultilevelManager manager(mc);
  const auto history = sparse_history(2, 8192, 6, 0.01, 31);
  for (const auto& payloads : history) {
    manager.commit(views_of(payloads));
  }
  // Tear the newest local entry (a mid-chain delta) on rank 0: the local
  // chain is broken, but every link also lives on partner/io.
  ASSERT_TRUE(manager.corrupt_local(0));
  const auto recovery = manager.recover();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint_id, 6u);
  EXPECT_EQ(recovery->payloads, history.back());
  EXPECT_NE(recovery->levels[0], RecoveryLevel::kLocal);
  EXPECT_EQ(recovery->levels[1], RecoveryLevel::kLocal);
}

TEST(Incremental, LostAnchorFallsBackToOlderCheckpoint) {
  // Local NVM only: no partner, no IO. Killing a chain's anchor strands
  // every delta that depends on it; recovery must settle on the newest
  // checkpoint whose chain is intact instead of failing outright.
  MultilevelConfig mc;
  mc.node_count = 2;
  mc.nvm_capacity_bytes = 1ull << 20;
  mc.partner_every = 0;
  mc.io_every = 0;
  mc.delta.enabled = true;
  mc.delta.chain_length = 2;
  mc.delta.block_bytes = 256;
  MultilevelManager manager(mc);
  const auto history = sparse_history(2, 4096, 5, 0.01, 41);
  for (const auto& payloads : history) {
    manager.commit(views_of(payloads));
  }
  // Kinds: 1=F 2=D 3=D 4=F 5=D. Erase rank 0's anchor #4: ids 5 and 4
  // are gone for rank 0, but 3 -> 2 -> 1 still replays.
  manager.local_store(0).erase(4);
  const auto recovery = manager.recover();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint_id, 3u);
  EXPECT_EQ(recovery->payloads, history[2]);
}

TEST(Incremental, DedupIndexPlanAdmitAssemble) {
  DedupIndex index(delta::CdcParams{256, 512, 1024});
  const Bytes image = random_bytes(8192, 51);

  const auto plan = index.plan(image);
  EXPECT_EQ(plan.raw_bytes, image.size());
  EXPECT_EQ(plan.new_bytes, image.size());
  EXPECT_EQ(plan.dup_bytes, 0u);
  EXPECT_TRUE(DedupIndex::is_recipe(plan.recipe));
  index.admit(plan, 0, 1);

  // The same bytes from another rank dedup completely.
  const auto plan2 = index.plan(image);
  EXPECT_EQ(plan2.new_bytes, 0u);
  EXPECT_EQ(plan2.dup_bytes, image.size());
  index.admit(plan2, 1, 1);
  EXPECT_EQ(index.logical_bytes(), 2 * image.size());
  EXPECT_EQ(index.stored_bytes(), image.size());

  // Assemble from a block map; a tampered block fails the CRC.
  std::map<std::uint64_t, Bytes> blocks;
  for (const auto& [key, data] : plan.new_blocks) blocks[key] = data;
  auto fetch = [&](const DedupIndex::BlockRef& ref) -> std::optional<Bytes> {
    const auto it = blocks.find(ref.key);
    if (it == blocks.end()) return std::nullopt;
    return it->second;
  };
  EXPECT_EQ(DedupIndex::assemble(plan.recipe, fetch).value(), image);
  blocks.begin()->second[0] ^= std::byte{0x01};
  EXPECT_FALSE(DedupIndex::assemble(plan.recipe, fetch).has_value());

  // Releasing the last reference frees the blocks.
  (void)index.release(0, 1);
  const auto freed = index.release(1, 1);
  EXPECT_FALSE(freed.empty());
  EXPECT_EQ(index.stored_bytes(), 0u);
}

// Regression for the crash-replay audit (docs/EQUIVALENCE.md): a restart
// that re-admits a (rank, id) the index already recorded - the process
// died mid-admit, or adopt_existing restores a recipe the dying run also
// admitted - must not double-charge refcounts.
TEST(Incremental, DedupAdmitReplayIsIdempotent) {
  DedupIndex index(delta::CdcParams{256, 512, 1024});
  const Bytes image = random_bytes(8192, 52);

  const auto plan = index.plan(image);
  index.admit(plan, 0, 1);
  const std::size_t unique = index.unique_blocks();
  const std::size_t stored = index.stored_bytes();
  const std::size_t logical = index.logical_bytes();

  // Replaying the same admit changes nothing.
  index.admit(plan, 0, 1);
  EXPECT_EQ(index.unique_blocks(), unique);
  EXPECT_EQ(index.stored_bytes(), stored);
  EXPECT_EQ(index.logical_bytes(), logical);

  // restore() of the surviving recipe is the same recording.
  const auto parsed = DedupIndex::parse_recipe(ByteSpan(plan.recipe));
  ASSERT_TRUE(parsed.has_value());
  index.restore(parsed->refs, parsed->image_size, 0, 1);
  EXPECT_EQ(index.unique_blocks(), unique);
  EXPECT_EQ(index.stored_bytes(), stored);
  EXPECT_EQ(index.logical_bytes(), logical);

  // One release frees everything: the replays charged exactly once.
  const auto freed = index.release(0, 1);
  EXPECT_EQ(freed.size(), unique);
  EXPECT_EQ(index.stored_bytes(), 0u);
  EXPECT_EQ(index.logical_bytes(), 0u);
  EXPECT_TRUE(index.release(0, 1).empty());
}

TEST(Incremental, AgentDeltaDrainShipsFramesAndReconstructs) {
  ckpt::KvStore io;
  ndp::AgentConfig cfg;
  cfg.codec = compress::CodecId::kNull;  // raw frames on the wire
  cfg.delta_chain = 3;
  cfg.delta_block_bytes = 256;
  cfg.io_bw = 1e9;
  cfg.rank = 0;

  ndp::NdpAgent agent(cfg, io);
  std::map<std::uint64_t, Bytes> images;
  Bytes image = random_bytes(16 * 1024, 61);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    image[id * 100] ^= std::byte{0x5A};  // sparse mutation
    images[id] = image;
    ASSERT_TRUE(agent.host_commit(id, image));
    while (agent.busy()) agent.pump(10.0);
  }
  EXPECT_EQ(agent.newest_on_io().value(), 5u);
  // Chain cadence with delta_chain = 3: F D D D F.
  EXPECT_EQ(agent.stats().full_frames, 2u);
  EXPECT_EQ(agent.stats().delta_frames, 3u);
  // The deltas keep the wire traffic far below the 5x raw image volume.
  EXPECT_LT(agent.stats().bytes_to_io, 3 * images[1].size());

  // Reconstruct id 5 from the IO store alone by walking its frame chain.
  std::map<std::uint64_t, Bytes> resolved;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto raw = io.get(cfg.rank, id);
    ASSERT_TRUE(raw.ok());
    const auto frame = ndp::NdpAgent::parse_frame(ByteSpan(*raw));
    ASSERT_TRUE(frame.has_value());
    if (frame->kind == PayloadKind::kFull) {
      resolved[id] = frame->payload;
    } else {
      ASSERT_TRUE(resolved.count(frame->base_id));
      const delta::DeltaCodec codec(
          delta::DeltaCodec::stream_block_size(frame->payload));
      resolved[id] =
          codec.decode(ByteSpan(resolved[frame->base_id]), frame->payload);
    }
    EXPECT_EQ(resolved[id], images[id]);
  }

  // A reset drops the chain reference: the next drain is a full frame.
  agent.reset();
  ASSERT_TRUE(agent.host_commit(6, image));
  while (agent.busy()) agent.pump(10.0);
  EXPECT_EQ(agent.stats().full_frames, 3u);
}

}  // namespace
}  // namespace ndpcr::ckpt
