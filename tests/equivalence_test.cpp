#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "common/rng.hpp"
#include "exec/task_pool.hpp"
#include "faults/crash.hpp"
#include "harness/equivalence.hpp"

namespace ndpcr::harness {
namespace {

// Every failing crash point is its own test failure, so a broken sweep
// reports WHICH mutation sites lose data, not just that one did.
void ExpectCleanSweep(const SweepReport& report) {
  EXPECT_GT(report.points_total, 0u);
  EXPECT_GT(report.points_run, 0u);
  for (const CrashRunResult& f : report.failed) {
    ADD_FAILURE() << "crash point " << f.point
                  << " (crashed=" << f.crashed
                  << " recovered_id=" << f.recovered_id
                  << "): " << f.failure;
  }
  EXPECT_TRUE(report.ok());
}

EquivalenceConfig SmokeConfig(PayloadMode mode, const std::string& kernel) {
  EquivalenceConfig config;
  config.kernel = kernel;
  config.mode = mode;
  config.node_count = 3;
  config.iterations = 6;
  config.cadence = 2;
  config.state_bytes = 8 << 10;
  config.seed = 11;
  return config;
}

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("ndpcr-equiv-" +
             std::to_string(Rng(::testing::UnitTest::GetInstance()
                                    ->random_seed())
                                .next_u64()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  std::filesystem::path root_;
};

TEST_F(EquivalenceTest, FullPayloadEveryCrashPoint) {
  ExpectCleanSweep(run_sweep(SmokeConfig(PayloadMode::kFull, "cg")));
}

TEST_F(EquivalenceTest, DeltaPayloadSweep) {
  ExpectCleanSweep(run_sweep(SmokeConfig(PayloadMode::kDelta, "mg"), 2));
}

TEST_F(EquivalenceTest, DedupPayloadSweep) {
  ExpectCleanSweep(run_sweep(SmokeConfig(PayloadMode::kDedup, "ft"), 2));
}

// The pipelined commit path under crash: the async writer (depth 2, the
// default every sweep above already drives) and the serial reference
// (depth 0) must enumerate identical canonical crash points and recover
// equivalently at each - the writer reorders nothing the crash gates can
// observe.
TEST_F(EquivalenceTest, PipelinedWriterMatchesSerialSweep) {
  EquivalenceConfig piped = SmokeConfig(PayloadMode::kFull, "cg");
  EquivalenceConfig serial = piped;
  serial.io_writer_depth = 0;
  const SweepReport a = run_sweep(piped, 2);
  const SweepReport b = run_sweep(serial, 2);
  ExpectCleanSweep(a);
  ExpectCleanSweep(b);
  EXPECT_EQ(a.golden.points.size(), b.golden.points.size());
  EXPECT_EQ(a.golden.final_fingerprint, b.golden.final_fingerprint);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// Online codec selection under crash: a dying run's probe choices are
// recorded in the stream containers, so any restart - which re-probes
// nothing - must decode whatever the victim wrote.
TEST_F(EquivalenceTest, AdaptiveCodecSweep) {
  EquivalenceConfig config = SmokeConfig(PayloadMode::kDelta, "ft");
  config.io_codec_adaptive = true;
  ExpectCleanSweep(run_sweep(config, 2));
}

// Seeded device faults (transient failures, torn writes, bitflips) layer
// under the crash gates, so crash points land inside retry and quarantine
// sequences too.
TEST_F(EquivalenceTest, SeededFaultScheduleSweep) {
  EquivalenceConfig config = SmokeConfig(PayloadMode::kFull, "cg");
  config.rates.transient = 0.05;
  config.rates.torn = 0.03;
  config.rates.bitflip = 0.02;
  config.fault_seed = 77;
  ExpectCleanSweep(run_sweep(config, 2));
}

// File-backed IO level: latest-pointer updates become crash points, so
// this sweeps the pointer's write-temp/fsync/rename atomicity end to end.
TEST_F(EquivalenceTest, FileBackedIoPointerSweep) {
  EquivalenceConfig config = SmokeConfig(PayloadMode::kFull, "cg");
  config.node_count = 2;
  config.io_root = root_;
  ExpectCleanSweep(run_sweep(config, 2));
}

// The sweep is a pure function of its config: the per-device cutoffs make
// death a device-local decision, so the report fingerprint must not move
// with the thread-pool size.
TEST_F(EquivalenceTest, SweepIsThreadInvariant) {
  const EquivalenceConfig base = SmokeConfig(PayloadMode::kDelta, "cg");
  std::vector<std::uint32_t> fingerprints;
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::TaskPool pool(threads);
    EquivalenceConfig config = base;
    config.pool = &pool;
    const SweepReport report = run_sweep(config, 3);
    ExpectCleanSweep(report);
    fingerprints.push_back(report.fingerprint);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

// Regression for the crash-consistency bug the first sweep exposed: a
// restart manager built over surviving stores used to start its id
// counter at 1 again, silently overwriting the oldest surviving
// checkpoints. adopt_existing must resume ids past everything durable.
TEST_F(EquivalenceTest, AdoptExistingResumesIdsAndRecovers) {
  faults::CrashSimConfig sc;
  sc.node_count = 2;
  sc.nvm_capacity_bytes = 1 << 20;
  faults::CrashSimulator sim(sc);

  Rng rng(42);
  std::vector<Bytes> payloads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    Bytes data(512);
    for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
    payloads.push_back(std::move(data));
  }
  std::vector<ByteSpan> spans(payloads.begin(), payloads.end());

  {
    ckpt::MultilevelConfig mc;
    mc.node_count = 2;
    sim.attach(mc);
    ckpt::MultilevelManager first(mc);
    EXPECT_EQ(first.commit(spans), 1u);
    EXPECT_EQ(first.commit(spans), 2u);
  }

  // Without adoption the fresh manager believes no checkpoint exists.
  {
    ckpt::MultilevelConfig mc;
    mc.node_count = 2;
    sim.attach(mc);
    ckpt::MultilevelManager amnesiac(mc);
    EXPECT_EQ(amnesiac.last_checkpoint_id(), 0u);
  }

  ckpt::MultilevelConfig mc;
  mc.node_count = 2;
  sim.attach(mc);
  mc.adopt_existing = true;
  ckpt::MultilevelManager restarted(mc);
  EXPECT_EQ(restarted.last_checkpoint_id(), 2u);

  const auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->checkpoint_id, 2u);
  ASSERT_EQ(recovery->payloads.size(), 2u);
  for (std::uint32_t r = 0; r < 2; ++r) {
    EXPECT_EQ(recovery->payloads[r], payloads[r]);
  }

  // New commits continue past the adopted ids instead of colliding.
  EXPECT_EQ(restarted.commit(spans), 3u);
}

// Stride-1 sweeps at the full smoke scale for every payload mode, plus a
// seeded-fault leg. Registered under `ctest -C soak` only.
TEST_F(EquivalenceTest, FullSoakAllModes) {
  for (const PayloadMode mode :
       {PayloadMode::kFull, PayloadMode::kDelta, PayloadMode::kDedup}) {
    EquivalenceConfig config = SmokeConfig(mode, "cg");
    config.iterations = 12;
    config.cadence = 3;
    config.state_bytes = 16 << 10;
    SCOPED_TRACE(to_string(mode));
    ExpectCleanSweep(run_sweep(config));
  }
  EquivalenceConfig faulty = SmokeConfig(PayloadMode::kDelta, "mg");
  faulty.rates.transient = 0.05;
  faulty.rates.torn = 0.03;
  faulty.rates.bitflip = 0.02;
  faulty.io_root = root_;
  SCOPED_TRACE("seeded-faults");
  ExpectCleanSweep(run_sweep(faulty));
}

}  // namespace
}  // namespace ndpcr::harness
