// Golden bit-identity tests for the codec kernels.
//
// The compressed wire format is a compatibility surface: checkpoints written
// by one build must restore under another, and the bench history is only
// comparable if the bytes (and therefore ratios) stay fixed. Every entry
// below is the CRC-32 of the full framed compressor output, pinned from the
// pre-kernel-overhaul implementation. Kernel rewrites (word-wide matching,
// table-driven entropy decode, scratch reuse) must reproduce these bytes
// exactly; a CRC change here means the wire format moved and is a bug unless
// the format version is deliberately revved.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "compress/codec.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

Bytes mixed_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(2) ? rng.next_below(8)
                                                 : rng.next_below(256));
  }
  return data;
}

Bytes text_payload(std::size_t size, std::uint64_t seed) {
  static const char* words[] = {"checkpoint ", "restart ",  "ndp ",
                                "drain ",      "compress ", "multilevel "};
  Rng rng(seed);
  Bytes data;
  data.reserve(size + 16);
  while (data.size() < size) {
    const char* w = words[rng.next_below(6)];
    for (const char* p = w; *p; ++p) data.push_back(static_cast<std::byte>(*p));
  }
  data.resize(size);
  return data;
}

struct Payload {
  const char* name;
  Bytes data;
};

const std::vector<Payload>& payloads() {
  static const std::vector<Payload> all = [] {
    std::vector<Payload> p;
    p.push_back({"empty", {}});
    p.push_back({"one", Bytes(1, std::byte{42})});
    p.push_back({"runs", Bytes(4096, std::byte{7})});
    p.push_back({"mixed96k", mixed_payload(96 * 1024, 123)});
    p.push_back({"text64k", text_payload(64 * 1024, 321)});
    Rng rng(777);
    Bytes rnd(32 * 1024);
    for (auto& b : rnd) b = static_cast<std::byte>(rng.next_u64());
    p.push_back({"random32k", std::move(rnd)});
    return p;
  }();
  return all;
}

ByteSpan payload_by_name(const char* name) {
  for (const auto& p : payloads()) {
    if (std::string_view(p.name) == name) return p.data;
  }
  ADD_FAILURE() << "unknown payload " << name;
  return {};
}

struct Golden {
  const char* codec;
  int level;
  const char* payload;
  std::uint32_t crc;
};

// Pinned from the pre-overhaul codecs (commit ddd06c5); see file comment.
constexpr Golden kGoldens[] = {
    {"null", 0, "empty", 0xF05B60EFU},
    {"null", 0, "one", 0x35BD2BB9U},
    {"null", 0, "runs", 0x545A4D81U},
    {"null", 0, "mixed96k", 0x0FA31232U},
    {"null", 0, "text64k", 0x744537B7U},
    {"null", 0, "random32k", 0xDE12D461U},
    {"rle", 0, "empty", 0xB0C2581CU},
    {"rle", 0, "one", 0x11491127U},
    {"rle", 0, "runs", 0xC71E17A0U},
    {"rle", 0, "mixed96k", 0x6991482EU},
    {"rle", 0, "text64k", 0x47656314U},
    {"rle", 0, "random32k", 0x35D52C9EU},
    {"nlz4", 1, "empty", 0xD7CE1BE3U},
    {"nlz4", 1, "one", 0xA0C3B0AAU},
    {"nlz4", 1, "runs", 0x7E1B1698U},
    {"nlz4", 1, "mixed96k", 0xC50FA5BBU},
    {"nlz4", 1, "text64k", 0x8B8BCA70U},
    {"nlz4", 1, "random32k", 0xDA45326BU},
    {"nlz4", 2, "empty", 0xABAF3E38U},
    {"nlz4", 2, "one", 0xB1BEDAD3U},
    {"nlz4", 2, "runs", 0x139DE5C2U},
    {"nlz4", 2, "mixed96k", 0x9345CE3BU},
    {"nlz4", 2, "text64k", 0xAEDC7212U},
    {"nlz4", 2, "random32k", 0x9BC86601U},
    {"nlz4", 4, "empty", 0x536D758EU},
    {"nlz4", 4, "one", 0x93440E21U},
    {"nlz4", 4, "runs", 0xC8900376U},
    {"nlz4", 4, "mixed96k", 0xF22AB75FU},
    {"nlz4", 4, "text64k", 0x56F688B6U},
    {"nlz4", 4, "random32k", 0x18D2CED5U},
    {"nlz4", 9, "empty", 0xE49705D5U},
    {"nlz4", 9, "one", 0x6F4A7C2DU},
    {"nlz4", 9, "runs", 0x81789969U},
    {"nlz4", 9, "mixed96k", 0x65A61271U},
    {"nlz4", 9, "text64k", 0xE203CD56U},
    {"nlz4", 9, "random32k", 0x4C3D5725U},
    {"ngzip", 1, "empty", 0x40A57A5DU},
    {"ngzip", 1, "one", 0x1736714BU},
    {"ngzip", 1, "runs", 0xF663B3A8U},
    {"ngzip", 1, "mixed96k", 0xF03E4BFCU},
    {"ngzip", 1, "text64k", 0xB4C7E5D5U},
    {"ngzip", 1, "random32k", 0x0DFC300DU},
    {"ngzip", 4, "empty", 0xC4B470C3U},
    {"ngzip", 4, "one", 0x93277BD5U},
    {"ngzip", 4, "runs", 0xB5E35EB5U},
    {"ngzip", 4, "mixed96k", 0xC4120ED1U},
    {"ngzip", 4, "text64k", 0xFDA54024U},
    {"ngzip", 4, "random32k", 0x3A03D566U},
    {"ngzip", 6, "empty", 0xFEF1DFDAU},
    {"ngzip", 6, "one", 0xA962D4CCU},
    {"ngzip", 6, "runs", 0x9EE33347U},
    {"ngzip", 6, "mixed96k", 0x1EB3FEF6U},
    {"ngzip", 6, "text64k", 0xA7E987F2U},
    {"ngzip", 6, "random32k", 0xFDAFBE22U},
    {"ngzip", 9, "empty", 0xA9B3C639U},
    {"ngzip", 9, "one", 0xFE20CD2FU},
    {"ngzip", 9, "runs", 0x5A620460U},
    {"ngzip", 9, "mixed96k", 0xF6AD5FF3U},
    {"ngzip", 9, "text64k", 0x4FF35375U},
    {"ngzip", 9, "random32k", 0xA5AF919FU},
    {"nbzip2", 1, "empty", 0xB36D969AU},
    {"nbzip2", 1, "one", 0x6E94FE72U},
    {"nbzip2", 1, "runs", 0xE414A641U},
    {"nbzip2", 1, "mixed96k", 0x170F7BBEU},
    {"nbzip2", 1, "text64k", 0x5C37AF2AU},
    {"nbzip2", 1, "random32k", 0xFAC53344U},
    {"nbzip2", 9, "empty", 0x0E5521C7U},
    {"nbzip2", 9, "one", 0xD3AC492FU},
    {"nbzip2", 9, "runs", 0x03F69BFEU},
    {"nbzip2", 9, "mixed96k", 0x7A6792D7U},
    {"nbzip2", 9, "text64k", 0x3713C12FU},
    {"nbzip2", 9, "random32k", 0x6DF74C0EU},
    {"nxz", 1, "empty", 0xF20D4BA7U},
    {"nxz", 1, "one", 0x6E95D1A2U},
    {"nxz", 1, "runs", 0xFAEF9A42U},
    {"nxz", 1, "mixed96k", 0xE2B63CC8U},
    {"nxz", 1, "text64k", 0x5059647CU},
    {"nxz", 1, "random32k", 0xF537BD62U},
    {"nxz", 6, "empty", 0x132341C3U},
    {"nxz", 6, "one", 0x24AB5AE9U},
    {"nxz", 6, "runs", 0xF4E55CE2U},
    {"nxz", 6, "mixed96k", 0xAEE0BDD7U},
    {"nxz", 6, "text64k", 0x50D608C6U},
    {"nxz", 6, "random32k", 0x034BA686U},
};

// Same contract for the chunked container (16 KiB chunks, single worker;
// the bytes are thread-invariant, which ChunkedCodec's own tests cover).
constexpr Golden kChunkedGoldens[] = {
    {"null", 0, "mixed96k", 0xED026332U},
    {"rle", 0, "mixed96k", 0xE01C2A7CU},
    {"nlz4", 1, "mixed96k", 0x57D3C931U},
    {"ngzip", 1, "mixed96k", 0x4E857696U},
    {"nbzip2", 1, "mixed96k", 0x88E31657U},
    {"nxz", 1, "mixed96k", 0x353FFB07U},
};

TEST(CompressGolden, WholeStreamBytesArePinned) {
  for (const auto& g : kGoldens) {
    SCOPED_TRACE(std::string(g.codec) + " level " + std::to_string(g.level) +
                 " payload " + g.payload);
    const auto codec = make_codec(g.codec, g.level);
    const ByteSpan input = payload_by_name(g.payload);
    const Bytes packed = codec->compress(input);
    EXPECT_EQ(Crc32::compute(packed), g.crc);
    const Bytes back = codec->decompress(packed);
    EXPECT_TRUE(back.size() == input.size() &&
                std::equal(back.begin(), back.end(), input.begin()));
  }
}

TEST(CompressGolden, ScratchReuseProducesIdenticalBytes) {
  // One workspace threaded through every codec and payload in sequence:
  // stale tables, vectors, and staging buffers from a previous (codec,
  // payload) pair must never leak into the next stream's bytes.
  CodecScratch scratch;
  for (const auto& g : kGoldens) {
    SCOPED_TRACE(std::string(g.codec) + " level " + std::to_string(g.level) +
                 " payload " + g.payload);
    const auto codec = make_codec(g.codec, g.level);
    const ByteSpan input = payload_by_name(g.payload);
    const Bytes packed = codec->compress(input, scratch);
    EXPECT_EQ(Crc32::compute(packed), g.crc);
    const Bytes back = codec->decompress(packed, scratch);
    EXPECT_TRUE(back.size() == input.size() &&
                std::equal(back.begin(), back.end(), input.begin()));
  }
}

TEST(CompressGolden, ChunkedContainerBytesArePinned) {
  for (const auto& g : kChunkedGoldens) {
    SCOPED_TRACE(std::string("chunked-") + g.codec);
    const auto id = make_codec(g.codec, g.level)->id();
    const ChunkedCodec cc(id, g.level, 16 * 1024, 1);
    const ByteSpan input = payload_by_name(g.payload);
    const Bytes packed = cc.compress(input);
    EXPECT_EQ(Crc32::compute(packed), g.crc);
    const Bytes back = cc.decompress(packed);
    EXPECT_TRUE(back.size() == input.size() &&
                std::equal(back.begin(), back.end(), input.begin()));
  }
}

}  // namespace
}  // namespace ndpcr::compress
