#include <gtest/gtest.h>

#include "cluster/ndp_cluster_sim.hpp"

namespace ndpcr::cluster {
namespace {

NdpClusterConfig small_config() {
  NdpClusterConfig cfg;
  cfg.node_count = 3;
  cfg.state_bytes_per_rank = 32 * 1024;
  cfg.total_steps = 400;
  cfg.node_mttf = 900.0;
  cfg.ndp_compress_bw = 512e3;
  cfg.aggregate_io_bw = 384e3;
  return cfg;
}

TEST(NdpClusterSim, CompletesUnderFailuresWithExactState) {
  const auto r = NdpClusterSim(small_config()).run();
  EXPECT_GT(r.failures, 0u);
  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_GT(r.io_checkpoints, 0u);  // drains really reached the PFS
  EXPECT_TRUE(r.state_verified);
  EXPECT_GT(r.progress_rate(), 0.3);
  EXPECT_LT(r.progress_rate(), 1.0);
}

TEST(NdpClusterSim, RecoveryMixFollowsPLocal) {
  auto cfg = small_config();
  cfg.total_steps = 1200;
  cfg.p_local_recovery = 1.0;
  const auto all_local = NdpClusterSim(cfg).run();
  EXPECT_EQ(all_local.io_recoveries, 0u);
  EXPECT_GT(all_local.local_recoveries, 0u);

  cfg.p_local_recovery = 0.0;
  const auto all_io = NdpClusterSim(cfg).run();
  EXPECT_EQ(all_io.local_recoveries, 0u);
  EXPECT_GT(all_io.io_recoveries + all_io.scratch_restarts, 0u);
}

TEST(NdpClusterSim, NoFailuresIsPureComputePlusCommits) {
  auto cfg = small_config();
  cfg.node_mttf = 1e15;
  cfg.total_steps = 200;
  const auto r = NdpClusterSim(cfg).run();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.steps_rerun, 0u);
  EXPECT_TRUE(r.state_verified);
  // Overhead is exactly the commits: 25 commits x 0.5 s over 200 s work.
  const double expected =
      200.0 / (200.0 + static_cast<double>(r.checkpoints) *
                           cfg.local_commit_time);
  EXPECT_NEAR(r.progress_rate(), expected, 1e-9);
}

TEST(NdpClusterSim, FasterIoRaisesIoCheckpointCadence) {
  auto cfg = small_config();
  cfg.node_mttf = 1e15;
  cfg.total_steps = 600;
  const auto slow = NdpClusterSim(cfg).run();
  cfg.aggregate_io_bw *= 8;
  const auto fast = NdpClusterSim(cfg).run();
  EXPECT_GE(fast.io_checkpoints, slow.io_checkpoints);
}

TEST(NdpClusterSim, DeterministicForSeed) {
  const auto a = NdpClusterSim(small_config()).run();
  const auto b = NdpClusterSim(small_config()).run();
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.io_checkpoints, b.io_checkpoints);
}

TEST(NdpClusterSim, InvalidConfigThrows) {
  auto cfg = small_config();
  cfg.node_count = 0;
  EXPECT_THROW(NdpClusterSim{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.aggregate_io_bw = 0;
  EXPECT_THROW(NdpClusterSim{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::cluster
