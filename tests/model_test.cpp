#include <gtest/gtest.h>

#include "model/analytic_multilevel.hpp"
#include "model/evaluator.hpp"

namespace ndpcr::model {
namespace {

SimOptions fast_options() {
  SimOptions opt;
  opt.total_work = 150.0 * 3600;
  opt.trials = 2;
  return opt;
}

TEST(Config, LabelsMatchPaperStyle) {
  CrConfig io{.kind = ConfigKind::kIoOnly};
  EXPECT_EQ(io.label(), "I/O Only");

  CrConfig host{.kind = ConfigKind::kLocalIoHost,
                .compression_factor = 0.73,
                .p_local_recovery = 0.8};
  EXPECT_EQ(host.label(), "Local(80%) + I/O-Host (cf 73%)");

  CrConfig ndp{.kind = ConfigKind::kLocalIoNdp, .p_local_recovery = 0.96};
  EXPECT_EQ(ndp.label(), "Local(96%) + I/O-NDP");
}

TEST(Evaluator, NdpEffectiveRatioMatchesDrainArithmetic) {
  Evaluator ev(CrScenario{}, fast_options());
  // cf = 73%: drain ~302 s, local period ~157.5 s -> ratio 2 (Figure 5).
  CrConfig ndp{.kind = ConfigKind::kLocalIoNdp, .compression_factor = 0.73};
  EXPECT_EQ(ev.ndp_effective_ratio(ndp), 2u);
  // Uncompressed: drain 1120 s -> ratio 8.
  ndp.compression_factor = 0.0;
  EXPECT_EQ(ev.ndp_effective_ratio(ndp), 8u);
}

TEST(Evaluator, OptimalRatioDecreasesWithCompression) {
  // Figure 5: higher compression factor -> cheaper IO checkpoints ->
  // lower optimal locally-saved : IO-saved ratio.
  Evaluator ev(CrScenario{}, fast_options());
  CrConfig plain{.kind = ConfigKind::kLocalIoHost,
                 .compression_factor = 0.0,
                 .p_local_recovery = 0.8};
  CrConfig compressed = plain;
  compressed.compression_factor = 0.85;
  const auto k_plain = ev.optimal_io_every(plain);
  const auto k_compressed = ev.optimal_io_every(compressed);
  EXPECT_LT(k_compressed, k_plain);
  EXPECT_GE(k_compressed, 1u);
}

TEST(Evaluator, ProgressRateOrderingMatchesFigure6) {
  // At p_local = 80%, cf = 73% (the paper's worked example in 6.3):
  // multilevel plain < multilevel+compression < NDP plain < NDP+compression
  Evaluator ev(CrScenario{}, fast_options());
  const double p = 0.8;

  CrConfig host_plain{.kind = ConfigKind::kLocalIoHost,
                      .compression_factor = 0.0,
                      .p_local_recovery = p};
  CrConfig host_comp = host_plain;
  host_comp.compression_factor = 0.73;
  CrConfig ndp_plain{.kind = ConfigKind::kLocalIoNdp,
                     .compression_factor = 0.0,
                     .p_local_recovery = p};
  CrConfig ndp_comp = ndp_plain;
  ndp_comp.compression_factor = 0.73;

  const double r_host_plain = ev.evaluate(host_plain).progress_rate();
  const double r_host_comp = ev.evaluate(host_comp).progress_rate();
  const double r_ndp_plain = ev.evaluate(ndp_plain).progress_rate();
  const double r_ndp_comp = ev.evaluate(ndp_comp).progress_rate();

  // Robust orderings of Figure 6: compression helps each strategy, NDP +
  // compression wins overall, plain host multilevel is the worst of the
  // four, and NDP without compression beats it.
  EXPECT_LT(r_host_plain, r_host_comp);
  EXPECT_LT(r_ndp_plain, r_ndp_comp);
  EXPECT_LT(r_host_plain, r_ndp_plain);
  EXPECT_GT(r_ndp_comp, r_host_comp);
  EXPECT_GT(r_ndp_comp, r_ndp_plain);

  // Section 6.3's worked numbers: 32% -> 62% -> 75% -> 84%. The
  // compressed anchors reproduce within a few points. Two known
  // deviations (see EXPERIMENTS.md): the uncompressed host point is more
  // optimistic here (~50% vs 32%) because the empirical ratio optimizer
  // can push IO checkpoints arbitrarily rare, and the uncompressed NDP
  // point is less optimistic (~64% vs 75%) because the simulator charges
  // the full restore-retry and pipeline-lag costs of 1120 s uncompressed
  // IO restores.
  EXPECT_LT(r_host_plain, 0.55);
  EXPECT_NEAR(r_host_comp, 0.62, 0.08);
  EXPECT_NEAR(r_ndp_plain, 0.70, 0.09);
  EXPECT_NEAR(r_ndp_comp, 0.84, 0.06);
}

TEST(Evaluator, IoOnlyIsWorstOnTheExascaleScenario) {
  Evaluator ev(CrScenario{}, fast_options());
  CrConfig io_only{.kind = ConfigKind::kIoOnly, .compression_factor = 0.73};
  CrConfig ndp{.kind = ConfigKind::kLocalIoNdp,
               .compression_factor = 0.73,
               .p_local_recovery = 0.8};
  EXPECT_LT(ev.evaluate(io_only).progress_rate(),
            ev.evaluate(ndp).progress_rate());
}

TEST(Evaluator, HigherPLocalImprovesProgress) {
  Evaluator ev(CrScenario{}, fast_options());
  CrConfig lo{.kind = ConfigKind::kLocalIoHost,
              .compression_factor = 0.73,
              .p_local_recovery = 0.2};
  CrConfig hi = lo;
  hi.p_local_recovery = 0.96;
  // Compare at a common sensible ratio to isolate the p_local effect.
  const auto k = ev.optimal_io_every(hi);
  EXPECT_LT(ev.evaluate_at_ratio(lo, k).progress_rate(),
            ev.evaluate_at_ratio(hi, k).progress_rate());
}

TEST(Evaluator, RateAtIntervalMatchesDefaultAtTable4Value) {
  // rate_at_interval at the scenario's own interval must agree with the
  // standard evaluation path (same seeds, same machinery).
  Evaluator ev(CrScenario{}, fast_options());
  CrConfig ndp{.kind = ConfigKind::kLocalIoNdp,
               .compression_factor = 0.73,
               .p_local_recovery = 0.85};
  const double via_eval = ev.evaluate(ndp).progress_rate();
  const double via_interval = ev.rate_at_interval(ndp, 0, 150.0);
  EXPECT_DOUBLE_EQ(via_eval, via_interval);
}

TEST(Evaluator, OptimalIntervalNearDalyAndBeatsExtremes) {
  Evaluator ev(CrScenario{}, fast_options());
  CrConfig ndp{.kind = ConfigKind::kLocalIoNdp,
               .compression_factor = 0.73,
               .p_local_recovery = 0.85};
  const double best = ev.optimal_local_interval(ndp, 0);
  // Daly's optimum for the 7.47 s local commit at 30 min MTTI is ~164 s;
  // the flat objective admits a wide band around it.
  EXPECT_GT(best, 60.0);
  EXPECT_LT(best, 500.0);
  const double rate_best = ev.rate_at_interval(ndp, 0, best);
  EXPECT_GE(rate_best + 0.01, ev.rate_at_interval(ndp, 0, 20.0));
  EXPECT_GE(rate_best + 0.01, ev.rate_at_interval(ndp, 0, 1500.0));
  // Table 4's 150 s is within a point of the optimum.
  EXPECT_NEAR(ev.rate_at_interval(ndp, 0, 150.0), rate_best, 0.01);
}

TEST(AnalyticMultilevel, MatchesSimulatorOnHostConfig) {
  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 400.0 * 3600;
  opt.trials = 3;
  Evaluator ev(scenario, opt);
  CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
               .compression_factor = 0.73,
               .p_local_recovery = 0.85};
  const std::uint32_t k = 30;
  const auto sim_result = ev.evaluate_at_ratio(cfg, k);

  AnalyticInputs in;
  in.mtti = scenario.mtti;
  in.local_interval = scenario.local_interval;
  in.local_commit = scenario.checkpoint_bytes / scenario.local_bw;
  in.io_commit = scenario.checkpoint_bytes * (1 - 0.73) /
                 scenario.io_bw_per_node;
  in.local_restore = in.local_commit;
  in.io_restore = in.io_commit;
  in.io_every = k;
  in.p_local = 0.85;
  const AnalyticResult analytic = analytic_multilevel(in);

  EXPECT_NEAR(analytic.progress_rate(), sim_result.progress_rate(), 0.05);
}

TEST(AnalyticMultilevel, ComponentsBehaveSensibly) {
  AnalyticInputs in;
  in.io_commit = 300.0;
  in.io_every = 20;
  const auto r = analytic_multilevel(in);
  EXPECT_GT(r.progress_rate(), 0.0);
  EXPECT_LT(r.progress_rate(), 1.0);
  EXPECT_GT(r.breakdown.rerun_io, r.breakdown.rerun_local * 0.1);

  // More frequent IO checkpoints: more ckpt_io, less rerun_io.
  AnalyticInputs frequent = in;
  frequent.io_every = 5;
  const auto rf = analytic_multilevel(frequent);
  EXPECT_GT(rf.breakdown.ckpt_io, r.breakdown.ckpt_io);
  EXPECT_LT(rf.breakdown.rerun_io, r.breakdown.rerun_io);
}

TEST(AnalyticMultilevel, InvalidInputsThrow) {
  AnalyticInputs in;
  in.mtti = 0;
  EXPECT_THROW(analytic_multilevel(in), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::model
