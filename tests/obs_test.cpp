#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "exec/reporter.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_stores.hpp"
#include "ndp/agent.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ndpcr::obs {
namespace {

using faults::FaultPlan;
using faults::FaultRates;
using faults::FaultyKvStore;
using faults::io_target;
using faults::partner_target;

// ---------------------------------------------------------------------------
// Metrics: histogram bucketing, quantiles, registry export.

TEST(Histogram, ExactMomentsAndClampedQuantiles) {
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 31.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.2);
  // Bucket-resolution estimates, always inside the observed range.
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 1.0) << q;
    EXPECT_LE(h.quantile(q), 16.0) << q;
  }
  // The median of a power-of-two ladder lands within a factor of 2.
  EXPECT_GE(h.p50(), 2.0);
  EXPECT_LE(h.p50(), 8.0);
}

TEST(Histogram, EmptyAndDegenerate) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  h.record(3.5);
  EXPECT_DOUBLE_EQ(h.p50(), 3.5);  // clamped to [min, max]
  EXPECT_DOUBLE_EQ(h.p99(), 3.5);
}

TEST(Summary, ExactPercentilesOnKnownSamples) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);
  const Summary s = summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.51);
  EXPECT_GE(s.p95, 95.0);
  EXPECT_LE(s.p95, 96.0);
  EXPECT_GE(s.p99, 99.0);
}

TEST(MetricsRegistry, ExportsValidJsonInNameOrder) {
  MetricsRegistry m;
  m.counter("b.count").add(2);
  m.counter("a.count").add(1);
  m.gauge("x.level").set(0.25);
  m.histogram("lat").record(0.001);
  m.histogram("lat").record(0.004);

  exec::Reporter reporter({"obs_test", 1, 1, 1, "cfg"});
  m.add_to(reporter);
  ASSERT_EQ(reporter.sections().size(), 3u);
  EXPECT_EQ(reporter.sections()[0].name, "metrics.counters");
  // std::map ordering: "a.count" exports before "b.count".
  EXPECT_EQ(reporter.sections()[0].rows[0][0], "a.count");
  EXPECT_TRUE(json_valid(reporter.json()));
}

TEST(MetricsRegistry, FingerprintTracksState) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("x").add(1);
  b.counter("x").add(1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.counter("x").add(1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------------
// Tracer: span structure, exporter validity, disabled behaviour.

TEST(Tracer, SpansNestAndExportAsValidChromeJson) {
  Tracer tracer;
  tracer.set_track_name(0, "main");
  {
    auto outer = tracer.span("outer", "test", 0, {u64("n", 1)});
    auto inner = tracer.span("inner", "test", 0,
                             {f64("x", 0.5), str("tag", "a\"b\\c")});
    tracer.instant("tick", "test", 0);
  }
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 5u);  // 2x begin, instant, 2x end (LIFO)
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[2].phase, Phase::kInstant);
  EXPECT_EQ(events[3].name, "inner");
  EXPECT_EQ(events[3].phase, Phase::kEnd);
  EXPECT_EQ(events[4].name, "outer");
  EXPECT_TRUE(json_valid(tracer.chrome_json()));
}

TEST(Tracer, DisabledTracerRecordsNothingCheaply) {
  Tracer off(false);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.root(), nullptr);
  EXPECT_TRUE(off.task_buffers(8).empty());
  {
    auto span = off.span("ignored", "test");
    off.instant("ignored", "test");
    off.instant_at(1.0, "ignored", "test");
  }
  EXPECT_TRUE(off.events().empty());
  EXPECT_TRUE(json_valid(off.chrome_json()));
  // The shared null tracer behaves the same and never accumulates.
  Tracer::null().instant("ignored", "test");
  EXPECT_FALSE(Tracer::null().enabled());
}

TEST(Tracer, WallEventsExcludedFromFingerprint) {
  Tracer tracer;
  tracer.instant("a", "test");
  const std::uint32_t before = tracer.fingerprint();
  { auto w = tracer.wall_span("timed", "bench"); }
  EXPECT_GT(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.fingerprint(), before);
}

TEST(Tracer, SpliceMergesTaskBuffersInIndexOrder) {
  Tracer tracer;
  auto parts = tracer.task_buffers(3);
  ASSERT_EQ(parts.size(), 3u);
  // Fill out of order: splice must restore index order.
  parts[2].instant("t2", "test");
  parts[0].instant("t0", "test");
  parts[1].instant("t1", "test");
  tracer.splice(parts);
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].name, "t0");
  EXPECT_EQ(tracer.events()[1].name, "t1");
  EXPECT_EQ(tracer.events()[2].name, "t2");
}

// ---------------------------------------------------------------------------
// Determinism: the traced data path mirrors chaos_test's ThreadInvariance
// suite - trace and metrics fingerprints must be bit-identical at pool
// sizes 1/2/8, clean and under a seeded fault schedule.

struct ObsRun {
  std::uint32_t trace_fp = 0;
  std::uint32_t metrics_fp = 0;
  std::size_t events = 0;
  std::string json;
};

ObsRun run_traced_data_path(unsigned pool_threads, bool with_faults) {
  exec::TaskPool pool(pool_threads);
  Tracer tracer;
  MetricsRegistry metrics;

  ckpt::MultilevelConfig mc;
  mc.node_count = 6;
  mc.nvm_capacity_bytes = 1 << 20;
  mc.partner_every = 1;
  mc.io_every = 1;
  mc.partner_scheme = ckpt::PartnerScheme::kXorGroup;
  mc.xor_group_size = 3;
  mc.io_codec = compress::CodecId::kDeflateStyle;
  mc.io_codec_level = 1;
  mc.io_chunk_bytes = 2048;
  mc.io_threads = 0;
  mc.pool = &pool;
  mc.trace = &tracer;
  if (with_faults) {
    auto plan = std::make_shared<FaultPlan>(
        777, FaultRates{0.05, 0.03, 0.02, 0.02});
    mc.store_factory = [plan](ckpt::StoreLevel level, std::uint32_t host) {
      const faults::Target target = level == ckpt::StoreLevel::kIo
                                        ? io_target()
                                        : partner_target(host);
      return std::make_unique<FaultyKvStore>(plan, target);
    };
    mc.local_write_hook = faults::make_local_write_hook(plan, nullptr);
  }
  ckpt::MultilevelManager manager(mc);

  Rng rng(31337);
  for (int i = 0; i < 6; ++i) {
    std::vector<Bytes> payloads;
    for (std::uint32_t r = 0; r < mc.node_count; ++r) {
      Bytes p(6000 + rng.next_below(500));
      for (auto& b : p) b = static_cast<std::byte>(rng.next_below(7));
      payloads.push_back(std::move(p));
    }
    const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    (void)manager.commit(views);
  }
  (void)manager.recover();
  ckpt::record_health(metrics, manager.health(), "ckpt");

  ObsRun run;
  run.trace_fp = tracer.fingerprint();
  run.metrics_fp = metrics.fingerprint();
  run.events = tracer.events().size();
  run.json = tracer.chrome_json();
  return run;
}

bool has_event(const std::string& json, const std::string& name) {
  return json.find("\"name\":\"" + name + "\"") != std::string::npos;
}

TEST(ObsDeterminism, CleanTraceBitIdenticalAtPoolSizes128) {
  const auto base = run_traced_data_path(1, /*with_faults=*/false);
  EXPECT_GT(base.events, 0u);
  EXPECT_TRUE(json_valid(base.json));
  // Every commit phase and the recovery walk appear in the trace. The
  // pipelined commit path emits per-rank io_compress/io_put and the
  // io_settle barrier where the old flat batch had one io_write span.
  for (const char* name : {"commit", "image_build", "local", "partner",
                           "io", "io_compress", "io_put", "io_settle",
                           "recover", "try_checkpoint"}) {
    EXPECT_TRUE(has_event(base.json, name)) << name;
  }
  for (unsigned threads : {2u, 8u}) {
    const auto other = run_traced_data_path(threads, false);
    EXPECT_EQ(other.trace_fp, base.trace_fp) << threads << " threads";
    EXPECT_EQ(other.metrics_fp, base.metrics_fp) << threads << " threads";
    EXPECT_EQ(other.events, base.events) << threads << " threads";
  }
}

TEST(ObsDeterminism, FaultedTraceBitIdenticalAtPoolSizes128) {
  const auto base = run_traced_data_path(1, /*with_faults=*/true);
  EXPECT_TRUE(json_valid(base.json));
  // The schedule genuinely perturbed the path: retry/quarantine events
  // are in the trace, not just counters.
  EXPECT_TRUE(has_event(base.json, "put_retry") ||
              has_event(base.json, "read_retry") ||
              has_event(base.json, "verify_fail"));
  for (unsigned threads : {2u, 8u}) {
    const auto other = run_traced_data_path(threads, true);
    EXPECT_EQ(other.trace_fp, base.trace_fp) << threads << " threads";
    EXPECT_EQ(other.metrics_fp, base.metrics_fp) << threads << " threads";
  }
}

TEST(ObsDeterminism, TracedChaosRunMatchesUntracedFingerprint) {
  faults::ChaosConfig cfg;
  cfg.seed = 555;
  cfg.commits = 16;
  cfg.io_codec = compress::CodecId::kDeflateStyle;
  cfg.io_chunk_bytes = 1024;
  cfg.io_threads = 0;

  exec::TaskPool one(1);
  cfg.pool = &one;
  const auto untraced = faults::run_chaos(cfg);

  std::uint32_t base_trace_fp = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::TaskPool pool(threads);
    Tracer tracer;
    MetricsRegistry metrics;
    faults::ChaosConfig traced_cfg = cfg;
    traced_cfg.pool = &pool;
    traced_cfg.trace = &tracer;
    traced_cfg.metrics = &metrics;
    const auto report = faults::run_chaos(traced_cfg);
    // Observation must not perturb the run.
    EXPECT_EQ(report.fingerprint, untraced.fingerprint)
        << threads << " threads";
    EXPECT_EQ(report.violations, 0u);
    EXPECT_TRUE(json_valid(tracer.chrome_json()));
    EXPECT_EQ(metrics.counter("chaos.run.commits").value(), report.commits);
    if (threads == 1) {
      base_trace_fp = tracer.fingerprint();
      // Injections appear as instants on the fault tracks.
      EXPECT_GT(report.faults.injected(), 0u);
      EXPECT_TRUE(has_event(tracer.chrome_json(), "fault_transient") ||
                  has_event(tracer.chrome_json(), "fault_torn") ||
                  has_event(tracer.chrome_json(), "fault_stall"));
    } else {
      EXPECT_EQ(tracer.fingerprint(), base_trace_fp)
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// NDP agent: drain pipeline spans on the virtual clock, health counters.

Bytes compressible_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(4));
  return data;
}

ndp::AgentConfig agent_config(Tracer* tracer) {
  ndp::AgentConfig cfg;
  cfg.uncompressed_capacity = 1 << 20;
  cfg.compressed_capacity = 1 << 20;
  cfg.compress_bw = 1e6;
  cfg.io_bw = 0.5e6;
  cfg.trace = tracer;
  return cfg;
}

TEST(ObsNdpAgent, DrainEmitsOverlappedStageSpans) {
  Tracer tracer;
  ckpt::KvStore io;
  ndp::NdpAgent agent(agent_config(&tracer), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(100 * 1024, 1)));
  agent.pump(1e9);

  const std::string json = tracer.chrome_json();
  EXPECT_TRUE(json_valid(json));
  for (const char* name :
       {"host_commit", "drain_start", "compress_chunk", "write_chunk",
        "drain"}) {
    EXPECT_TRUE(has_event(json, name)) << name;
  }
  EXPECT_EQ(agent.stats().io_put_attempts, 1u);
  EXPECT_EQ(agent.stats().host_fallbacks, 0u);
  EXPECT_EQ(agent.drain_health().state, ckpt::LevelState::kHealthy);
}

TEST(ObsNdpAgent, FallbackCountedAndTraced) {
  Tracer tracer;
  auto plan = std::make_shared<FaultPlan>(31);
  plan->add_outage(io_target(), 0, std::uint64_t{0} - 1);
  FaultyKvStore io(plan, io_target());
  ndp::NdpAgent agent(agent_config(&tracer), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(100 * 1024, 3)));
  agent.pump(1e9);

  EXPECT_EQ(agent.stats().host_fallbacks, 1u);
  EXPECT_EQ(agent.stats().io_put_attempts, 1u);
  const auto health = agent.drain_health();
  EXPECT_EQ(health.state, ckpt::LevelState::kDegraded);
  EXPECT_EQ(health.put_failures, 1u);
  const std::string json = tracer.chrome_json();
  EXPECT_TRUE(has_event(json, "drain_failed"));
  EXPECT_TRUE(has_event(json, "host_fallback"));
}

TEST(ObsNdpAgent, RetryCountersFeedDrainHealth) {
  Tracer tracer;
  auto plan = std::make_shared<FaultPlan>(23);
  plan->force(io_target(), 0, faults::FaultKind::kTransient);
  FaultyKvStore io(plan, io_target());
  ndp::NdpAgent agent(agent_config(&tracer), io);
  ASSERT_TRUE(agent.host_commit(1, compressible_image(100 * 1024, 1)));
  agent.pump(1e9);

  EXPECT_EQ(agent.stats().io_put_attempts, 2u);  // failed put + retry
  const auto health = agent.drain_health();
  EXPECT_EQ(health.put_retries, 1u);
  EXPECT_EQ(health.put_failures, 0u);
  EXPECT_NEAR(health.backoff_seconds, 0.05, 1e-12);
  EXPECT_TRUE(has_event(tracer.chrome_json(), "io_put_retry"));
}

}  // namespace
}  // namespace ndpcr::obs
