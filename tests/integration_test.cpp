// Cross-module integration: the full data path a real deployment would
// run, wired end to end -
//   mini-app state -> checkpoint image -> chunked parallel compression ->
//   durable file store -> node loss -> restore -> exact state;
// plus model-level consistency checks across the evaluator, the NDP
// sizing math, and the compression study.

#include <gtest/gtest.h>

#include <filesystem>

#include "ckpt/file_store.hpp"
#include "ckpt/image.hpp"
#include "ckpt/multilevel.hpp"
#include "compress/chunked.hpp"
#include "model/evaluator.hpp"
#include "ndp/agent.hpp"
#include "ndp/ndp.hpp"
#include "study/compression_study.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr {
namespace {

TEST(Integration, AppToDiskAndBack) {
  const auto root = std::filesystem::temp_directory_path() /
                    "ndpcr-integration-app-to-disk";
  std::filesystem::remove_all(root);

  auto app = workloads::make_miniapp("minimd", 256 * 1024, 77);
  for (int i = 0; i < 4; ++i) app->step();
  const auto digest = app->state_digest();

  // Capture -> frame with metadata -> compress in parallel chunks ->
  // persist.
  const Bytes payload = app->checkpoint();
  ckpt::CheckpointMeta meta{.app_id = 9, .rank = 0, .checkpoint_id = 4,
                            .step = app->step_count()};
  const Bytes image = ckpt::CheckpointImage::build(meta, payload);
  const compress::ChunkedCodec codec(compress::CodecId::kDeflateStyle, 1,
                                     64 * 1024, /*threads=*/3);
  const Bytes packed = codec.compress(image);
  EXPECT_LT(packed.size(), image.size());

  {
    ckpt::FileStore store(root);
    store.put(meta.rank, meta.checkpoint_id, packed);
  }

  // "Node loss": a fresh process (fresh store handle, fresh app) recovers.
  auto replacement = workloads::make_miniapp("minimd", 256 * 1024, 77);
  ckpt::FileStore store(root);
  const auto newest = store.newest_id(0);
  ASSERT_TRUE(newest.has_value());
  const Bytes raw = codec.decompress(store.get(0, *newest).value());
  const ckpt::CheckpointImage parsed = ckpt::CheckpointImage::parse(raw);
  EXPECT_EQ(parsed.meta().step, 4u);
  replacement->restore(
      Bytes(parsed.payload().begin(), parsed.payload().end()));
  EXPECT_EQ(replacement->state_digest(), digest);
  EXPECT_EQ(replacement->step_count(), 4u);

  std::filesystem::remove_all(root);
}

TEST(Integration, NdpAgentFeedsMultilevelRecovery) {
  // The agent's IO store is the same KvStore the multilevel manager's IO
  // level would read: a checkpoint drained by the NDP is restorable after
  // total node loss.
  ckpt::KvStore io;
  ndp::AgentConfig cfg;
  cfg.compress_bw = 10e6;
  cfg.io_bw = 10e6;
  ndp::NdpAgent agent(cfg, io);

  auto app = workloads::make_miniapp("hpccg", 128 * 1024, 5);
  app->step();
  const auto digest = app->state_digest();
  ASSERT_TRUE(agent.host_commit(1, app->checkpoint()));
  agent.pump(1e9);
  agent.reset();  // node loss

  const auto packed = io.get(0, 1);
  ASSERT_TRUE(packed.has_value());
  const compress::ChunkedCodec codec(cfg.codec, cfg.codec_level);
  auto replacement = workloads::make_miniapp("hpccg", 128 * 1024, 5);
  replacement->restore(codec.decompress(*packed));
  EXPECT_EQ(replacement->state_digest(), digest);
}

TEST(Integration, StudyFeedsNdpSizingConsistently) {
  // Measured compression factors drive the section 4.4 equations: the
  // derived interval must equal the compressed volume over the IO link,
  // and stronger codecs must never need a *longer* interval.
  study::StudyConfig cfg;
  cfg.bytes_per_app = 128 * 1024;
  cfg.checkpoints_per_app = 1;
  cfg.apps = {"phpccg"};
  cfg.codecs = {{compress::CodecId::kLz4Style, 1, "nlz4(1)"},
                {compress::CodecId::kDeflateStyle, 1, "ngzip(1)"}};
  const auto results = run_compression_study(cfg);

  const double ckpt_bytes = 112e9;
  const double io_bw = 100e6;
  const auto lz4 = results.find("phpccg", "nlz4(1)");
  const auto gz = results.find("phpccg", "ngzip(1)");
  ASSERT_NE(lz4, nullptr);
  ASSERT_NE(gz, nullptr);
  const auto s_lz4 =
      ndp::derive_sizing(lz4->factor, lz4->compress_bw, ckpt_bytes, io_bw);
  const auto s_gz =
      ndp::derive_sizing(gz->factor, gz->compress_bw, ckpt_bytes, io_bw);
  EXPECT_NEAR(s_gz.io_interval, ckpt_bytes * (1 - gz->factor) / io_bw,
              1e-6);
  EXPECT_LE(s_gz.io_interval, s_lz4.io_interval);  // gzip compresses harder
  EXPECT_GE(s_gz.cores, s_lz4.cores);              // ...and costs more cores
}

TEST(Integration, EvaluatorRespectsDominanceAcrossScenarios) {
  // Model-level sanity across machine scenarios: NDP + compression
  // dominates host multilevel at the same parameters, and a larger MTTI
  // never hurts.
  model::SimOptions opt;
  opt.total_work = 100.0 * 3600;
  opt.trials = 2;
  for (double mtti : {1800.0, 5400.0}) {
    model::CrScenario scenario;
    scenario.mtti = mtti;
    model::Evaluator ev(scenario, opt);
    model::CrConfig host{.kind = model::ConfigKind::kLocalIoHost,
                         .compression_factor = 0.73,
                         .p_local_recovery = 0.85};
    model::CrConfig ndp = host;
    ndp.kind = model::ConfigKind::kLocalIoNdp;
    EXPECT_GT(ev.evaluate(ndp).progress_rate(),
              ev.evaluate(host).progress_rate())
        << "mtti=" << mtti;
  }
}

TEST(Integration, LocalOnlyDesignPointHitsNinetyPercent) {
  // Section 6.4: "the system was configured to have a 90% progress rate
  // with single level checkpointing to local". Local-only is the host
  // strategy with the IO level disabled and perfect local recovery.
  sim::TimelineConfig cfg;
  cfg.strategy = sim::Strategy::kLocalIoHost;
  cfg.io_every = 0;
  cfg.p_local_recovery = 1.0;
  cfg.local_interval = 150.0;
  cfg.total_work = 500.0 * 3600;
  const auto r = sim::TimelineSimulator::run_trials(cfg, 3, 3);
  EXPECT_NEAR(r.progress_rate(), 0.90, 0.01);
  EXPECT_EQ(r.io_recoveries, 0u);
}

}  // namespace
}  // namespace ndpcr
