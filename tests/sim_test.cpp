#include <gtest/gtest.h>

#include "analytic/daly.hpp"
#include "common/units.hpp"
#include "sim/timeline.hpp"

namespace ndpcr::sim {
namespace {

using namespace ndpcr::units;

TimelineConfig paper_defaults() {
  TimelineConfig cfg;  // defaults are the Table 4 values
  cfg.total_work = 300.0 * 3600;
  return cfg;
}

TEST(Breakdown, Accounting) {
  Breakdown b;
  b.compute = 80;
  b.ckpt_local = 5;
  b.ckpt_io = 5;
  b.rerun_io = 10;
  EXPECT_DOUBLE_EQ(b.overhead(), 20.0);
  EXPECT_DOUBLE_EQ(b.total(), 100.0);
  EXPECT_DOUBLE_EQ(b.progress_rate(), 0.8);

  Breakdown c = b.scaled(0.5);
  EXPECT_DOUBLE_EQ(c.compute, 40.0);
  EXPECT_DOUBLE_EQ(c.progress_rate(), 0.8);  // scaling preserves rates
  c += b;
  EXPECT_DOUBLE_EQ(c.compute, 120.0);
}

TEST(Timeline, DerivedCostsMatchPaperArithmetic) {
  TimelineSimulator sim(paper_defaults(), 0);
  // 112 GB / 15 GB/s = 7.47 s local commit (section 6.1.3).
  EXPECT_NEAR(sim.local_commit_time(), 7.4667, 1e-3);
  // 112 GB / 100 MB/s = 1120 s = 18.67 min to IO uncompressed (sec 3.4).
  TimelineConfig raw = paper_defaults();
  raw.compression_factor = 0.0;
  EXPECT_NEAR(TimelineSimulator(raw, 0).host_io_commit_time(), 1120.0, 1e-6);
  // At cf = 72.8% (gzip(1) average): 30.5 GB -> ~305 s (section 5.3).
  TimelineConfig gz = paper_defaults();
  gz.compression_factor = 0.728;
  EXPECT_NEAR(TimelineSimulator(gz, 0).host_io_commit_time(), 304.6, 1.0);
  EXPECT_NEAR(TimelineSimulator(gz, 0).io_restore_time(), 304.6, 1.0);
}

TEST(Timeline, NdpDrainTime) {
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoNdp;
  cfg.compression_factor = 0.728;
  TimelineSimulator sim(cfg, 0);
  // Overlapped: max(compress 112 GB / 440.4 MB/s = 254 s, write 305 s).
  EXPECT_NEAR(sim.ndp_drain_time(), 304.6, 1.0);
  // Serial ablation: the sum.
  cfg.ndp_overlap = false;
  EXPECT_NEAR(TimelineSimulator(cfg, 0).ndp_drain_time(), 254.3 + 304.6,
              2.0);
  // Without compression the drain is the raw IO write.
  cfg.ndp_overlap = true;
  cfg.compression_factor = 0.0;
  EXPECT_NEAR(TimelineSimulator(cfg, 0).ndp_drain_time(), 1120.0, 1e-6);
}

TEST(Timeline, NoFailuresGivesDeterministicOverhead) {
  // With an astronomically large MTTI the only overhead is checkpointing.
  TimelineConfig cfg = paper_defaults();
  cfg.mtti = 1e15;
  cfg.strategy = Strategy::kLocalIoHost;
  cfg.io_every = 10;
  cfg.total_work = 10000.0;
  const TimelineResult r = TimelineSimulator(cfg, 1).run();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.breakdown.compute, 10000.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rerun_local + r.breakdown.rerun_io, 0.0);
  // 66 full intervals of 150 s fit in 10000 s of work; every 10th
  // checkpoint also writes to IO.
  EXPECT_EQ(r.local_checkpoints, 66u);
  EXPECT_EQ(r.io_checkpoints, 6u);
  EXPECT_NEAR(r.breakdown.ckpt_local, 66 * (112e9 / 15e9), 1e-6);
  EXPECT_NEAR(r.breakdown.ckpt_io, 6 * 1120.0, 1e-6);
}

TEST(Timeline, IoOnlyMatchesDalyModel) {
  // Single-level checkpointing must reproduce Daly's analytic efficiency.
  TimelineConfig cfg;
  cfg.strategy = Strategy::kIoOnly;
  cfg.mtti = minutes(30);
  cfg.checkpoint_bytes = 112e9;
  cfg.io_bw = 112e9 / 9.0;  // a 9-second commit: the 90% operating point
  cfg.compression_factor = 0.0;
  const analytic::CrParams p{.mtti = cfg.mtti, .commit = 9.0, .restart = 9.0};
  cfg.local_interval = analytic::daly_optimal_interval(9.0, cfg.mtti);
  cfg.total_work = 2000.0 * 3600;

  const TimelineResult r = TimelineSimulator::run_trials(cfg, 3, 7);
  const double expected = analytic::efficiency(cfg.local_interval, p);
  EXPECT_NEAR(r.progress_rate(), expected, 0.01);
  EXPECT_GT(r.failures, 100u);  // statistically meaningful
}

TEST(Timeline, FailureCountMatchesMtti) {
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoHost;
  cfg.io_every = 50;
  cfg.p_local_recovery = 0.9;
  const TimelineResult r = TimelineSimulator::run_trials(cfg, 5, 11);
  const double wall = r.breakdown.total() * 5;  // run_trials averages
  EXPECT_NEAR(static_cast<double>(r.failures) / (wall / cfg.mtti), 1.0, 0.1);
}

TEST(Timeline, RecoveryLevelSplitMatchesProbability) {
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoHost;
  cfg.io_every = 20;
  cfg.p_local_recovery = 0.8;
  cfg.total_work = 1000.0 * 3600;
  const TimelineResult r = TimelineSimulator::run_trials(cfg, 3, 13);
  const double local_share =
      static_cast<double>(r.local_recoveries) /
      static_cast<double>(r.local_recoveries + r.io_recoveries);
  EXPECT_NEAR(local_share, 0.8, 0.05);
}

TEST(Timeline, NdpBeatsHostAtSameParameters) {
  // The headline claim: offloading IO writes to the NDP improves progress
  // rate at identical machine parameters.
  TimelineConfig host = paper_defaults();
  host.strategy = Strategy::kLocalIoHost;
  host.io_every = 40;  // near-optimal for these parameters
  host.compression_factor = 0.73;
  host.p_local_recovery = 0.85;

  TimelineConfig ndp = host;
  ndp.strategy = Strategy::kLocalIoNdp;
  ndp.io_every = 0;

  const double host_rate =
      TimelineSimulator::run_trials(host, 3, 17).progress_rate();
  const double ndp_rate =
      TimelineSimulator::run_trials(ndp, 3, 17).progress_rate();
  EXPECT_GT(ndp_rate, host_rate);
  EXPECT_GT(ndp_rate, 0.8);
}

TEST(Timeline, NdpHasNoBlockingIoCheckpointTime) {
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoNdp;
  cfg.compression_factor = 0.73;
  const TimelineResult r = TimelineSimulator::run_trials(cfg, 3, 19);
  // Figure 7: the "Checkpoint I/O" component vanishes with NDP.
  EXPECT_DOUBLE_EQ(r.breakdown.ckpt_io, 0.0);
  EXPECT_GT(r.io_checkpoints, 0u);  // but checkpoints do reach IO
}

TEST(Timeline, CompressionImprovesHostMultilevel) {
  TimelineConfig plain = paper_defaults();
  plain.strategy = Strategy::kLocalIoHost;
  plain.io_every = 60;
  plain.p_local_recovery = 0.85;

  TimelineConfig compressed = plain;
  compressed.compression_factor = 0.73;
  compressed.io_every = 25;

  const double plain_rate =
      TimelineSimulator::run_trials(plain, 3, 23).progress_rate();
  const double compressed_rate =
      TimelineSimulator::run_trials(compressed, 3, 23).progress_rate();
  EXPECT_GT(compressed_rate, plain_rate);
}

TEST(Timeline, RerunAttributionFollowsRecoveryLevel) {
  // With p_local = 1 all rerun is local; with p_local = 0 all rerun is IO.
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoHost;
  cfg.io_every = 10;

  cfg.p_local_recovery = 1.0;
  const TimelineResult all_local = TimelineSimulator(cfg, 29).run();
  EXPECT_GT(all_local.breakdown.rerun_local, 0.0);
  EXPECT_DOUBLE_EQ(all_local.breakdown.rerun_io, 0.0);
  EXPECT_DOUBLE_EQ(all_local.breakdown.restore_io, 0.0);

  cfg.p_local_recovery = 0.0;
  const TimelineResult all_io = TimelineSimulator(cfg, 29).run();
  EXPECT_DOUBLE_EQ(all_io.breakdown.rerun_local, 0.0);
  EXPECT_GT(all_io.breakdown.rerun_io, 0.0);
}

TEST(Timeline, LargerIoEveryTradesCheckpointForRerun) {
  // The Figure 4 mechanism: rarer IO checkpoints mean less blocking
  // checkpoint time but more lost work on IO recoveries.
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoHost;
  cfg.p_local_recovery = 0.85;
  cfg.total_work = 1000.0 * 3600;

  cfg.io_every = 5;
  const auto frequent = TimelineSimulator::run_trials(cfg, 3, 31);
  cfg.io_every = 200;
  const auto rare = TimelineSimulator::run_trials(cfg, 3, 31);

  EXPECT_GT(frequent.breakdown.ckpt_io, rare.breakdown.ckpt_io);
  EXPECT_LT(frequent.breakdown.rerun_io, rare.breakdown.rerun_io);
}

TEST(Timeline, InvalidConfigurationsThrow) {
  TimelineConfig cfg = paper_defaults();
  cfg.mtti = 0;
  EXPECT_THROW(TimelineSimulator(cfg, 0), std::invalid_argument);
  cfg = paper_defaults();
  cfg.compression_factor = 1.0;
  EXPECT_THROW(TimelineSimulator(cfg, 0), std::invalid_argument);
  cfg = paper_defaults();
  cfg.io_bw = 0;
  EXPECT_THROW(TimelineSimulator(cfg, 0), std::invalid_argument);
}

TEST(Timeline, DeterministicForSameSeed) {
  TimelineConfig cfg = paper_defaults();
  cfg.strategy = Strategy::kLocalIoNdp;
  cfg.compression_factor = 0.5;
  cfg.total_work = 50.0 * 3600;
  const TimelineResult a = TimelineSimulator(cfg, 123).run();
  const TimelineResult b = TimelineSimulator(cfg, 123).run();
  EXPECT_DOUBLE_EQ(a.breakdown.total(), b.breakdown.total());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.io_checkpoints, b.io_checkpoints);
}

}  // namespace
}  // namespace ndpcr::sim
