// The engine's central promise (docs/ENGINE.md): results computed through
// a TaskPool are bit-identical to the serial path for any thread count.
// These tests pin that promise for the layers refactored onto the engine:
// TimelineSimulator::run_trials, the Evaluator optimizers, and the cluster
// replicate drivers.

#include <cstdint>

#include <gtest/gtest.h>

#include "cluster/replicates.hpp"
#include "exec/task_pool.hpp"
#include "model/evaluator.hpp"
#include "sim/timeline.hpp"

namespace {

using ndpcr::exec::TaskPool;
using ndpcr::sim::TimelineConfig;
using ndpcr::sim::TimelineResult;
using ndpcr::sim::TimelineSimulator;

void expect_identical(const TimelineResult& a, const TimelineResult& b) {
  EXPECT_DOUBLE_EQ(a.breakdown.compute, b.breakdown.compute);
  EXPECT_DOUBLE_EQ(a.breakdown.ckpt_local, b.breakdown.ckpt_local);
  EXPECT_DOUBLE_EQ(a.breakdown.ckpt_io, b.breakdown.ckpt_io);
  EXPECT_DOUBLE_EQ(a.breakdown.restore_local, b.breakdown.restore_local);
  EXPECT_DOUBLE_EQ(a.breakdown.restore_io, b.breakdown.restore_io);
  EXPECT_DOUBLE_EQ(a.breakdown.rerun_local, b.breakdown.rerun_local);
  EXPECT_DOUBLE_EQ(a.breakdown.rerun_io, b.breakdown.rerun_io);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.local_recoveries, b.local_recoveries);
  EXPECT_EQ(a.io_recoveries, b.io_recoveries);
  EXPECT_EQ(a.scratch_restarts, b.scratch_restarts);
  EXPECT_EQ(a.local_checkpoints, b.local_checkpoints);
  EXPECT_EQ(a.io_checkpoints, b.io_checkpoints);
  EXPECT_EQ(a.trials, b.trials);
}

TimelineConfig test_config() {
  TimelineConfig cfg;
  cfg.strategy = ndpcr::sim::Strategy::kLocalIoHost;
  cfg.io_every = 6;
  cfg.compression_factor = 0.73;
  cfg.total_work = 4.0 * 3600;  // short timelines, many failures
  cfg.mtti = 600.0;
  return cfg;
}

TEST(EngineDeterminism, RunTrialsBitIdenticalAcrossThreadCounts) {
  const TimelineConfig cfg = test_config();
  constexpr int kTrials = 64;
  constexpr std::uint64_t kSeed = 12345;

  const TimelineResult serial =
      TimelineSimulator::run_trials(cfg, kTrials, kSeed, nullptr);
  EXPECT_EQ(serial.trials, kTrials);
  EXPECT_GT(serial.failures, 0u);  // the workload actually exercises failures

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    TaskPool pool(threads);
    const TimelineResult parallel =
        TimelineSimulator::run_trials(cfg, kTrials, kSeed, &pool);
    SCOPED_TRACE(threads);
    expect_identical(serial, parallel);
  }
}

TEST(EngineDeterminism, RunTrialsRepeatable) {
  const TimelineConfig cfg = test_config();
  TaskPool pool(4);
  const auto a = TimelineSimulator::run_trials(cfg, 16, 99, &pool);
  const auto b = TimelineSimulator::run_trials(cfg, 16, 99, &pool);
  expect_identical(a, b);
}

TEST(EngineDeterminism, MeanCountersAreExactMeans) {
  const TimelineConfig cfg = test_config();
  constexpr int kTrials = 10;
  const auto r = TimelineSimulator::run_trials(cfg, kTrials, 7, nullptr);
  EXPECT_EQ(r.trials, kTrials);
  EXPECT_DOUBLE_EQ(r.mean_failures(),
                   static_cast<double>(r.failures) / kTrials);
  EXPECT_DOUBLE_EQ(r.mean_io_checkpoints(),
                   static_cast<double>(r.io_checkpoints) / kTrials);
  // The counters are totals across trials: a single run() can't exceed the
  // aggregate of kTrials runs in expectation, and the mean is not rounded.
  const auto one = TimelineSimulator(cfg, 7).run();
  EXPECT_EQ(one.trials, 1);
  EXPECT_GE(r.failures, one.failures);
}

TEST(EngineDeterminism, OptimizersInvariantUnderGlobalThreadCount) {
  ndpcr::model::CrScenario scenario;
  ndpcr::model::SimOptions opt;
  opt.trials = 2;
  opt.total_work = 50.0 * 3600;
  ndpcr::model::Evaluator ev(scenario, opt);
  ndpcr::model::CrConfig cfg{
      .kind = ndpcr::model::ConfigKind::kLocalIoHost,
      .compression_factor = 0.73,
      .p_local_recovery = 0.85};

  ndpcr::exec::set_global_threads(1);
  const auto ratio1 = ev.optimal_io_every(cfg);
  const auto tau1 = ev.optimal_local_interval(cfg, ratio1);
  ndpcr::exec::set_global_threads(4);
  const auto ratio4 = ev.optimal_io_every(cfg);
  const auto tau4 = ev.optimal_local_interval(cfg, ratio4);
  ndpcr::exec::set_global_threads(0);  // restore the default for later tests

  EXPECT_EQ(ratio1, ratio4);
  EXPECT_DOUBLE_EQ(tau1, tau4);
}

TEST(EngineDeterminism, ClusterReplicatesInvariantAcrossThreadCounts) {
  ndpcr::cluster::ClusterSimConfig base;
  base.node_count = 4;
  base.state_bytes_per_rank = 16 * 1024;
  base.node_mttf = 2500.0;
  base.total_steps = 400;
  base.io_every = 4;
  base.seed = 21;

  TaskPool one(1);
  TaskPool four(4);
  const auto a = ndpcr::cluster::run_cluster_replicates(base, 6, &one);
  const auto b = ndpcr::cluster::run_cluster_replicates(base, 6, &four);
  ASSERT_EQ(a.runs.size(), 6u);
  ASSERT_EQ(b.runs.size(), 6u);
  EXPECT_EQ(a.total_failures, b.total_failures);
  EXPECT_EQ(a.total_unrecoverable, b.total_unrecoverable);
  EXPECT_DOUBLE_EQ(a.mean_steps_rerun, b.mean_steps_rerun);
  EXPECT_DOUBLE_EQ(a.mean_local_level_ranks, b.mean_local_level_ranks);
  EXPECT_DOUBLE_EQ(a.mean_partner_level_ranks, b.mean_partner_level_ranks);
  EXPECT_DOUBLE_EQ(a.mean_io_level_ranks, b.mean_io_level_ranks);
  EXPECT_TRUE(a.all_verified);
  EXPECT_TRUE(b.all_verified);
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].failures, b.runs[r].failures) << "replicate " << r;
    EXPECT_EQ(a.runs[r].steps_rerun, b.runs[r].steps_rerun)
        << "replicate " << r;
  }
  // Distinct sub-seeds: replicates are not all clones of replicate 0.
  bool any_difference = false;
  for (std::size_t r = 1; r < a.runs.size(); ++r) {
    if (a.runs[r].failures != a.runs[0].failures ||
        a.runs[r].steps_rerun != a.runs[0].steps_rerun) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(EngineDeterminism, NdpClusterReplicatesInvariantAcrossThreadCounts) {
  ndpcr::cluster::NdpClusterConfig base;
  base.node_count = 4;
  base.state_bytes_per_rank = 16 * 1024;
  base.node_mttf = 1500.0;
  base.total_steps = 300;
  base.seed = 31;

  TaskPool one(1);
  TaskPool four(4);
  const auto a = ndpcr::cluster::run_ndp_cluster_replicates(base, 5, &one);
  const auto b = ndpcr::cluster::run_ndp_cluster_replicates(base, 5, &four);
  ASSERT_EQ(a.runs.size(), 5u);
  EXPECT_EQ(a.total_failures, b.total_failures);
  EXPECT_DOUBLE_EQ(a.mean_progress_rate, b.mean_progress_rate);
  EXPECT_DOUBLE_EQ(a.mean_io_checkpoints, b.mean_io_checkpoints);
  EXPECT_EQ(a.all_verified, b.all_verified);
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].failures, b.runs[r].failures) << "replicate " << r;
    EXPECT_DOUBLE_EQ(a.runs[r].progress_rate(), b.runs[r].progress_rate())
        << "replicate " << r;
  }
}

}  // namespace
