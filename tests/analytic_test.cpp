#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analytic/daly.hpp"
#include "common/units.hpp"

namespace ndpcr::analytic {
namespace {

using namespace ndpcr::units;

TEST(Daly, FirstOrderInterval) {
  // Young/Daly first order: sqrt(2*delta*M) - delta.
  EXPECT_NEAR(first_order_optimal_interval(9.0, 1800.0),
              std::sqrt(2 * 9.0 * 1800.0) - 9.0, 1e-9);
}

TEST(Daly, HigherOrderCloseToFirstOrderWhenDeltaSmall) {
  const double delta = 1.0;
  const double mtti = 1e6;
  const double t1 = first_order_optimal_interval(delta, mtti);
  const double t2 = daly_optimal_interval(delta, mtti);
  EXPECT_NEAR(t2 / t1, 1.0, 1e-2);
}

TEST(Daly, HigherOrderCapsAtMtti) {
  // delta >= 2M: checkpointing cannot pay off within an MTTI.
  EXPECT_DOUBLE_EQ(daly_optimal_interval(100.0, 40.0), 40.0);
}

TEST(Daly, PaperSection33CommitInterval) {
  // Section 3.3: for M = 30 min and a 90% target, commit time ~ M/200
  // (9 seconds) and checkpoint period ~ M/10 (3 minutes).
  const double mtti = minutes(30);
  const double delta = required_commit_time(mtti, 0.90);
  EXPECT_NEAR(mtti / delta, 200.0, 20.0);  // ~1/200 of MTTI
  const double tau = daly_optimal_interval(delta, mtti);
  EXPECT_NEAR(mtti / tau, 10.0, 1.0);  // ~1/10 of MTTI
}

TEST(Daly, EfficiencyAtPaperOperatingPoint) {
  // M = 30 min, delta = R = 9 s, tau = Daly optimal: efficiency ~ 90%.
  const CrParams p{.mtti = minutes(30), .commit = 9.0, .restart = 9.0};
  const double eff = optimal_efficiency(p);
  EXPECT_NEAR(eff, 0.90, 0.005);
}

TEST(Daly, NumericOptimumAgreesWithClosedForm) {
  for (double mtti : {600.0, 1800.0, 9000.0}) {
    for (double delta : {1.0, 9.0, 60.0}) {
      const CrParams p{.mtti = mtti, .commit = delta, .restart = delta};
      const double closed = daly_optimal_interval(delta, mtti);
      const double numeric = numeric_optimal_interval(p);
      // Daly's closed form is an estimate; it should land within a few
      // percent of the numeric optimum and its efficiency within 0.1%.
      EXPECT_NEAR(closed / numeric, 1.0, 0.05)
          << "mtti=" << mtti << " delta=" << delta;
      EXPECT_NEAR(efficiency(closed, p), efficiency(numeric, p), 1e-3);
    }
  }
}

TEST(Daly, EfficiencyCurveIsMonotoneInMOverDelta) {
  double prev = 0.0;
  for (double ratio : {2.0, 5.0, 10.0, 50.0, 200.0, 1000.0, 10000.0}) {
    const double eff = efficiency_vs_m_over_delta(ratio);
    EXPECT_GT(eff, prev) << "ratio=" << ratio;
    EXPECT_LT(eff, 1.0);
    prev = eff;
  }
}

TEST(Daly, EfficiencyCurveAnchors) {
  // Figure 1 anchors: ~90% at M/delta = 200, about half at very small
  // ratios, approaching 1 for huge ratios.
  EXPECT_NEAR(efficiency_vs_m_over_delta(200.0), 0.90, 0.01);
  EXPECT_LT(efficiency_vs_m_over_delta(2.0), 0.55);
  EXPECT_GT(efficiency_vs_m_over_delta(100000.0), 0.99);
}

TEST(Daly, ExpectedRuntimeScalesLinearlyInSolveTime) {
  const CrParams p{.mtti = 1800.0, .commit = 9.0, .restart = 9.0};
  const double t1 = expected_runtime(100.0, 180.0, p);
  const double t2 = expected_runtime(200.0, 180.0, p);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-12);
}

TEST(Daly, RuntimeExceedsSolveTime) {
  const CrParams p{.mtti = 1800.0, .commit = 9.0, .restart = 9.0};
  EXPECT_GT(expected_runtime(1000.0, 180.0, p), 1000.0);
}

TEST(Daly, InvalidArgumentsThrow) {
  const CrParams p{.mtti = 1800.0, .commit = 9.0, .restart = 9.0};
  EXPECT_THROW(expected_runtime(1.0, 0.0, p), std::invalid_argument);
  EXPECT_THROW(daly_optimal_interval(0.0, 1800.0), std::invalid_argument);
  EXPECT_THROW(daly_optimal_interval(9.0, 0.0), std::invalid_argument);
  EXPECT_THROW(efficiency_vs_m_over_delta(0.0), std::invalid_argument);
  EXPECT_THROW(required_commit_time(1800.0, 1.5), std::invalid_argument);
}

// Property sweep: the closed-form optimum beats nearby intervals.
class DalyOptimalityTest : public ::testing::TestWithParam<double> {};

TEST_P(DalyOptimalityTest, OptimumBeatsPerturbations) {
  const double mtti = GetParam();
  const CrParams p{.mtti = mtti, .commit = mtti / 150.0,
                   .restart = mtti / 150.0};
  const double tau = numeric_optimal_interval(p);
  const double best = expected_runtime(1.0, tau, p);
  for (double factor : {0.25, 0.5, 2.0, 4.0}) {
    EXPECT_LE(best, expected_runtime(1.0, tau * factor, p) + 1e-12)
        << "mtti=" << mtti << " factor=" << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(MttiSweep, DalyOptimalityTest,
                         ::testing::Values(300.0, 1800.0, 3600.0, 9000.0,
                                           86400.0));

}  // namespace
}  // namespace ndpcr::analytic
