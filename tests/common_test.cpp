#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <cmath>

#include "common/batch_rng.hpp"
#include "common/breakdown_table.hpp"
#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "common/ziggurat.hpp"

namespace ndpcr {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // Standard CRC-32 check value for "123456789".
  const char* msg = "123456789";
  EXPECT_EQ(Crc32::compute(msg, std::strlen(msg)), 0xCBF43926u);
  // Empty input.
  EXPECT_EQ(Crc32::compute(nullptr, 0), 0x00000000u);
  // Single zero byte.
  const unsigned char zero = 0;
  EXPECT_EQ(Crc32::compute(&zero, 1), 0xD202EF8Du);
}

TEST(Crc32, SlicedPathMatchesGoldenVectors) {
  // Inputs long enough to exercise the 8-bytes-per-iteration slicing
  // loop, against published CRC-32 check values.
  const char* fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Crc32::compute(fox, std::strlen(fox)), 0x414FA339u);
  unsigned char ramp[256];
  for (int i = 0; i < 256; ++i) ramp[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Crc32::compute(ramp, sizeof ramp), 0x29058C73u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), Crc32::compute(data.data(), data.size()));
}

TEST(Crc32, SplitsAtOddOffsetsMatchOneShot) {
  // Misaligned split points mix the byte-wise head/tail with the sliced
  // core; every split must agree with the one-shot value.
  Bytes data(1021);
  Rng rng(99);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  const auto one_shot = Crc32::compute(data);
  for (std::size_t split : {1u, 3u, 7u, 8u, 9u, 63u, 64u, 513u, 1020u}) {
    Crc32 crc;
    crc.update(data.data(), split);
    crc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(crc.value(), one_shot) << "split=" << split;
  }
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(1024, std::byte{0x42});
  const auto clean = Crc32::compute(data);
  data[512] ^= std::byte{0x01};
  EXPECT_NE(Crc32::compute(data), clean);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(42);
  const double mean = 30.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(3);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Units, RoundTrips) {
  using namespace units;
  EXPECT_DOUBLE_EQ(bytes_from_gb(112), 112e9);
  EXPECT_DOUBLE_EQ(gb(bytes_from_gb(140)), 140.0);
  EXPECT_DOUBLE_EQ(minutes(30), 1800.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(160)), 160.0);
  EXPECT_DOUBLE_EQ(mbps(100), 1e8);
  EXPECT_DOUBLE_EQ(gbps(15), 1.5e10);
}

TEST(Bytes, LittleEndianRoundTrip) {
  Bytes buf;
  append_le<std::uint64_t>(buf, 0x1122334455667788ull);
  append_le<std::uint32_t>(buf, 0xDEADBEEFu);
  EXPECT_EQ(buf.size(), 12u);
  EXPECT_EQ(read_le<std::uint64_t>(buf, 0), 0x1122334455667788ull);
  EXPECT_EQ(read_le<std::uint32_t>(buf, 8), 0xDEADBEEFu);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.51, 0), "51%");
  EXPECT_EQ(fmt_si_bytes(112e9), "112 GB");
}

TEST(BreakdownTable, RowsMatchHeadersAndSumSanely) {
  sim::Breakdown b;
  b.compute = 90.0;
  b.ckpt_local = 4.0;
  b.ckpt_io = 2.0;
  b.rerun_io = 4.0;

  const auto ph = table::breakdown_header("Config");
  const auto pr = table::breakdown_row("x", b);
  ASSERT_EQ(pr.size(), ph.size());
  EXPECT_EQ(pr[0], "x");
  EXPECT_EQ(pr[1], fmt_percent(0.90, 1));  // progress = 90/100
  EXPECT_EQ(pr[2], fmt_percent(0.90, 1));  // compute share
  EXPECT_EQ(pr[4], fmt_percent(0.02, 1));  // CkptIO share

  const auto nh = table::normalized_header("Config");
  const auto nr = table::normalized_row("x", b);
  ASSERT_EQ(nr.size(), nh.size());
  EXPECT_EQ(nr[1], fmt_fixed(100.0 / 90.0, 3));  // total normalized to compute
  EXPECT_EQ(nr[2], fmt_fixed(1.0, 3));
}

}  // namespace
}  // namespace ndpcr

// ---- BatchRng (common/batch_rng.hpp) ---------------------------------

TEST(BatchRng, PortableAndDispatchedPathsAreBitIdentical) {
  // On AVX-512 hosts this pins the vector kernels against the portable
  // lane emulation - the cross-host bit-identity contract. Elsewhere
  // both instances resolve to the portable path and this degenerates to
  // a determinism check.
  for (const std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    ndpcr::BatchRng fast(seed);
    ndpcr::BatchRng portable(seed, /*use_vector=*/false);
    // Sizes cross 8-lane block boundaries and exercise the partial
    // tail (a full lane step with only the first `rest` values kept).
    const std::size_t sizes[] = {8, 3, 16, 129, 4096, 5};
    double carry_fast = 0.0;
    double carry_portable = 0.0;
    for (const std::size_t count : sizes) {
      std::vector<double> a(count), b(count);
      fast.fill_exp_times(a.data(), count, 3600.0, carry_fast);
      portable.fill_exp_times(b.data(), count, 3600.0, carry_portable);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(a[i], b[i]) << "gap stream diverged at " << i;
      }
      ASSERT_EQ(carry_fast, carry_portable);
      std::vector<std::uint32_t> va(count), vb(count);
      fast.fill_below(va.data(), count, 100003);
      portable.fill_below(vb.data(), count, 100003);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(va[i], vb[i]) << "pick stream diverged at " << i;
      }
    }
  }
}

TEST(BatchRng, ExpTimesAreNonDecreasingWithMatchingMean) {
  ndpcr::BatchRng rng(7);
  const double mean = 10.0;
  const std::size_t n = 200000;
  std::vector<double> t(n);
  double carry = 0.0;
  rng.fill_exp_times(t.data(), n, mean, carry);
  double prev = 0.0;
  for (const double x : t) {
    ASSERT_GE(x, prev);
    prev = x;
  }
  EXPECT_EQ(carry, t.back());
  EXPECT_NEAR(t.back() / static_cast<double>(n), mean, mean * 0.02);
}

TEST(BatchRng, FillBelowRespectsBoundAndCoversResidues) {
  ndpcr::BatchRng rng(9);
  std::vector<std::uint32_t> v(10000);
  rng.fill_below(v.data(), v.size(), 7);
  std::set<std::uint32_t> seen;
  for (const std::uint32_t x : v) {
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(BatchRng, DifferentSeedsDiverge) {
  ndpcr::BatchRng a(1), b(2);
  std::vector<double> ta(64), tb(64);
  double ca = 0.0, cb = 0.0;
  a.fill_exp_times(ta.data(), ta.size(), 1.0, ca);
  b.fill_exp_times(tb.data(), tb.size(), 1.0, cb);
  EXPECT_NE(ta, tb);
}

// ---- Exp(1) distribution pins ----------------------------------------
//
// Empirical mean and CDF of the ziggurat samplers against Exp(1) at a
// tolerance far below the 2% mean checks elsewhere. The wedge-acceptance
// band is the regression target: interpolating toward the wrong layer
// edge turns every wedge rejection into an accept, shifting the mean by
// ~0.4% and P(X < 0.2) by ~1.8e-3 absolute - 3-12x these bounds - while
// slipping under a 2% tolerance. Seeds are fixed and both samplers are
// deterministic, so the checks are exact, not flaky.

template <typename Draw>
static void ExpectUnitExpDistribution(Draw draw, std::size_t n) {
  constexpr double kXs[] = {0.05, 0.2, 0.5, 1.0, 2.0, 4.0};
  constexpr int kPoints = 6;
  std::size_t below[kPoints] = {};
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double v = draw();
    sum += v;
    for (int j = 0; j < kPoints; ++j) below[j] += v < kXs[j] ? 1u : 0u;
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 1.0, 1.5e-3);
  for (int j = 0; j < kPoints; ++j) {
    const double expected = 1.0 - std::exp(-kXs[j]);
    const double got = static_cast<double>(below[j]) / static_cast<double>(n);
    EXPECT_NEAR(got, expected, 6e-4) << "CDF at x=" << kXs[j];
  }
}

TEST(Ziggurat, UnitExpCdfMatchesTightly) {
  ndpcr::Rng rng(20260808);
  ExpectUnitExpDistribution([&rng] { return ndpcr::ziggurat_exp(rng); },
                            8000000);
}

TEST(BatchRng, ExpGapCdfMatchesTightly) {
  // Gaps recovered as successive differences of the accumulated times,
  // exercising zig_from() (and the vector kernel where available).
  ndpcr::BatchRng rng(20260808);
  constexpr std::size_t kChunk = 1 << 16;
  std::vector<double> t(kChunk);
  double carry = 0.0;
  double prev = 0.0;
  std::size_t idx = kChunk;
  ExpectUnitExpDistribution(
      [&] {
        if (idx == kChunk) {
          rng.fill_exp_times(t.data(), kChunk, 1.0, carry);
          idx = 0;
        }
        const double gap = t[idx] - prev;
        prev = t[idx];
        ++idx;
        return gap;
      },
      8000000);
}
