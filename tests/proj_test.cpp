#include <gtest/gtest.h>

#include "common/units.hpp"
#include "proj/projection.hpp"

namespace ndpcr::proj {
namespace {

using namespace ndpcr::units;

TEST(Projection, TitanMatchesTable1) {
  const MachineSpec t = titan();
  EXPECT_EQ(t.node_count, 18688);
  EXPECT_DOUBLE_EQ(t.system_peak_flops, 27e15);
  EXPECT_DOUBLE_EQ(t.node_peak_flops, 1.44e12);
  EXPECT_NEAR(tb(t.system_memory_bytes), 710.0, 1.0);  // ~710 TB
  EXPECT_DOUBLE_EQ(t.interconnect_bw, gbps(20));
  EXPECT_DOUBLE_EQ(t.io_bandwidth, gbps(1000));
  EXPECT_DOUBLE_EQ(to_minutes(t.system_mtti), 160.0);
}

TEST(Projection, ExascaleMatchesTable1) {
  const MachineSpec e = project_exascale(titan());
  EXPECT_DOUBLE_EQ(e.node_count, 100000.0);
  EXPECT_DOUBLE_EQ(e.node_peak_flops, 10e12);
  EXPECT_DOUBLE_EQ(e.system_peak_flops, 1e18);
  EXPECT_DOUBLE_EQ(gb(e.node_memory_bytes), 140.0);
  EXPECT_DOUBLE_EQ(pb(e.system_memory_bytes), 14.0);
  EXPECT_DOUBLE_EQ(e.interconnect_bw, gbps(50));
  EXPECT_DOUBLE_EQ(e.io_bandwidth, tbps(10));
  EXPECT_DOUBLE_EQ(to_minutes(e.system_mtti), 30.0);
}

TEST(Projection, FactorChangesMatchTable1) {
  const MachineSpec t = titan();
  const MachineSpec e = project_exascale(t);
  EXPECT_NEAR(e.node_count / t.node_count, 5.35, 0.01);
  EXPECT_NEAR(e.system_peak_flops / t.system_peak_flops, 37.0, 0.1);
  EXPECT_NEAR(e.node_peak_flops / t.node_peak_flops, 6.94, 0.1);  // ~7x
  EXPECT_NEAR(e.system_memory_bytes / t.system_memory_bytes, 19.72, 0.1);
  EXPECT_NEAR(e.node_memory_bytes / t.node_memory_bytes, 3.68, 0.01);
  EXPECT_NEAR(e.interconnect_bw / t.interconnect_bw, 2.5, 1e-9);
  EXPECT_NEAR(e.io_bandwidth / t.io_bandwidth, 10.0, 1e-9);
  EXPECT_NEAR(t.system_mtti / e.system_mtti, 5.33, 0.01);
}

TEST(Projection, MttiFromNodeMttf) {
  // 5-year node MTTF over 100k nodes: ~26.28 minutes (section 3.2).
  const double mtti = system_mtti_from_node_mttf(years(5), 100000);
  EXPECT_NEAR(to_minutes(mtti), 26.28, 0.05);
}

TEST(Projection, UnroundedMttiUsedWhenRoundingDisabled) {
  ScalingAssumptions a;
  a.mtti_round_to_minutes = 0;
  const MachineSpec e = project_exascale(titan(), a);
  EXPECT_NEAR(to_minutes(e.system_mtti), 26.28, 0.05);
}

TEST(Projection, PerNodeIoBandwidthIs100MBps) {
  // Section 3.4: effective per-node bandwidth to global I/O is 100 MB/s.
  const MachineSpec e = project_exascale(titan());
  EXPECT_NEAR(e.io_bandwidth_per_node(), mbps(100), 1.0);
}

TEST(Projection, CrRequirementsMatchSection33) {
  const MachineSpec e = project_exascale(titan());
  const CrRequirements r = derive_cr_requirements(e);
  // 80% of 140 GB = 112 GB per node.
  EXPECT_DOUBLE_EQ(gb(r.checkpoint_bytes_per_node), 112.0);
  // Commit time ~9 s, period ~3 min.
  EXPECT_NEAR(r.commit_time, 9.0, 1.0);
  EXPECT_NEAR(to_minutes(r.checkpoint_period), 3.0, 0.3);
  // Per-node bandwidth ~12.44 GB/s; system ~1.244 PB/s.
  EXPECT_NEAR(r.per_node_bandwidth / gbps(1), 12.44, 1.5);
  EXPECT_NEAR(pb(r.system_bandwidth), 1.244, 0.15);
  // The system requirement dwarfs the projected 10 TB/s global I/O.
  EXPECT_GT(r.system_bandwidth, 50 * e.io_bandwidth);
}

TEST(Projection, ScalesWithAlternateAssumptions) {
  ScalingAssumptions a;
  a.node_flops = 20e12;  // beefier nodes -> fewer of them
  const MachineSpec e = project_exascale(titan(), a);
  EXPECT_DOUBLE_EQ(e.node_count, 50000.0);
  EXPECT_DOUBLE_EQ(e.system_peak_flops, 1e18);
}

TEST(Projection, InvalidInputsThrow) {
  EXPECT_THROW(system_mtti_from_node_mttf(0.0, 10), std::invalid_argument);
  EXPECT_THROW(system_mtti_from_node_mttf(1.0, 0), std::invalid_argument);
  ScalingAssumptions a;
  a.node_flops = 0;
  EXPECT_THROW(project_exascale(titan(), a), std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::proj
