// Tests for the execution engine: TaskPool scheduling/contract behavior
// and the Reporter serialization formats.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/reporter.hpp"
#include "exec/task_pool.hpp"

namespace {

using ndpcr::exec::Reporter;
using ndpcr::exec::RunMeta;
using ndpcr::exec::TaskPool;

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, EmptyAndSingletonRanges) {
  TaskPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPool, SerialPoolIsAPlainLoop) {
  TaskPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);  // single-thread scheduling is index order
}

TEST(TaskPool, ParallelMapPreservesIndexOrder) {
  TaskPool pool(4);
  const auto out = pool.parallel_map(257, [](std::size_t i) { return 3 * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i);
}

TEST(TaskPool, ExceptionsPropagateToSubmitter) {
  TaskPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);

  // The pool survives a failed batch and runs the next one normally.
  std::atomic<int> ran{0};
  pool.parallel_for(50, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 50);
}

TEST(TaskPool, ExceptionOnSerialPathPropagatesToo) {
  TaskPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(TaskPool, NestedParallelForIsRejected) {
  TaskPool outer(2);
  TaskPool inner(2);
  std::atomic<int> rejected{0};
  outer.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(TaskPool::in_worker());
    try {
      inner.parallel_for(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1);
    }
  });
  EXPECT_EQ(rejected.load(), 8);
  EXPECT_FALSE(TaskPool::in_worker());
}

TEST(TaskPool, InWorkerFalseOutsideBatches) {
  EXPECT_FALSE(TaskPool::in_worker());
}

TEST(SubSeed, DistinctAcrossIndicesAndAdjacentBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 2ull, 42ull, ~0ull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.insert(ndpcr::exec::sub_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 64u);  // no collisions across the grid
  // Deterministic: same inputs, same stream.
  EXPECT_EQ(ndpcr::exec::sub_seed(7, 3), ndpcr::exec::sub_seed(7, 3));
}

Reporter make_reporter() {
  RunMeta meta;
  meta.bench = "unit_bench";
  meta.seed = 42;
  meta.trials = 8;
  meta.threads = 2;
  meta.config = "alpha=1,beta=2";
  Reporter rep(meta);
  rep.add_section("First", {"k", "v"});
  rep.add_row({"a", "1"});
  rep.add_row({"b, with comma", "2"});
  rep.add_section("Second", {"only"});
  rep.add_row({"quote \" inside"});
  rep.set_wall_seconds(0.25);
  return rep;
}

TEST(Reporter, AddRowWithoutSectionThrows) {
  Reporter rep(RunMeta{});
  EXPECT_THROW(rep.add_row({"x"}), std::logic_error);
}

TEST(Reporter, ConfigHashIsStableAndConfigSensitive) {
  RunMeta a;
  a.config = "alpha=1";
  RunMeta b;
  b.config = "alpha=2";
  const auto ha = Reporter(a).config_hash();
  EXPECT_EQ(ha.size(), 8u);
  EXPECT_EQ(ha, Reporter(a).config_hash());
  EXPECT_NE(ha, Reporter(b).config_hash());
}

TEST(Reporter, AsciiContainsSectionsAndCells) {
  const auto text = make_reporter().ascii();
  EXPECT_NE(text.find("First"), std::string::npos);
  EXPECT_NE(text.find("Second"), std::string::npos);
  EXPECT_NE(text.find("b, with comma"), std::string::npos);
}

TEST(Reporter, CsvHasMetadataSectionsAndQuoting) {
  const auto csv = make_reporter().csv();
  EXPECT_NE(csv.find("# bench=unit_bench"), std::string::npos);
  EXPECT_NE(csv.find("seed=42"), std::string::npos);
  EXPECT_NE(csv.find("trials=8"), std::string::npos);
  EXPECT_NE(csv.find("threads=2"), std::string::npos);
  EXPECT_NE(csv.find("# section: First"), std::string::npos);
  EXPECT_NE(csv.find("# section: Second"), std::string::npos);
  EXPECT_NE(csv.find("k,v"), std::string::npos);
  // RFC 4180: the comma-bearing cell must be quoted, the quote doubled.
  EXPECT_NE(csv.find("\"b, with comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote \"\" inside\""), std::string::npos);
}

TEST(Reporter, JsonEscapesAndRoundTripsStructure) {
  const auto json = make_reporter().json();
  EXPECT_NE(json.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"quote \\\" inside\""), std::string::npos);
  EXPECT_NE(json.find("\"sections\""), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Reporter, WriteJsonSelectsBySuffix) {
  const auto rep = make_reporter();
  const std::string dir = ::testing::TempDir();
  const std::string jpath = dir + "/rep_test.json";
  const std::string cpath = dir + "/rep_test.csv";
  rep.write(jpath);
  rep.write(cpath);
  auto slurp = [](const std::string& p) {
    FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string s;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, got);
    std::fclose(f);
    return s;
  };
  EXPECT_EQ(slurp(jpath), rep.json());
  EXPECT_EQ(slurp(cpath), rep.csv());
}

}  // namespace
