#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/failure_analysis.hpp"
#include "cluster/replicates.hpp"
#include "common/units.hpp"
#include "exec/task_pool.hpp"
#include "obs/metrics.hpp"

namespace ndpcr::cluster {
namespace {

using namespace ndpcr::units;

TEST(FailureAnalysis, ObservedMttiMatchesTheory) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 1000;
  cfg.node_mttf = years(5);
  cfg.target_failures = 20000;
  const auto r = analyze_failures(cfg);
  EXPECT_EQ(r.failures, 20000u);
  // System MTTI = node MTTF / N.
  EXPECT_NEAR(r.observed_system_mtti / (cfg.node_mttf / cfg.node_count), 1.0,
              0.05);
}

TEST(FailureAnalysis, MostFailuresRecoverableFromPartner) {
  // With a 5-year node MTTF and a 10-minute rebuild window, double
  // failures within a partner pair are rare: P(local) should be very
  // high - the regime behind the paper's 85-96% inputs.
  FailureAnalysisConfig cfg;
  cfg.node_count = 1000;
  cfg.node_mttf = years(5);
  cfg.rebuild_time = 600.0;
  cfg.target_failures = 50000;
  const auto r = analyze_failures(cfg);
  EXPECT_GT(r.p_local(), 0.99);
  EXPECT_EQ(r.failures, r.local_recoverable + r.io_required);
}

TEST(FailureAnalysis, LongerRebuildWindowNeedsMoreIoRecoveries) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 500;
  cfg.node_mttf = days(10);  // compressed time scale to get statistics
  cfg.target_failures = 50000;

  cfg.rebuild_time = 60.0;
  const double p_short = analyze_failures(cfg).p_local();
  cfg.rebuild_time = 3600.0;
  const double p_long = analyze_failures(cfg).p_local();
  EXPECT_LT(p_long, p_short);
  EXPECT_GT(analyze_failures(cfg).io_required, 0u);
}

TEST(FailureAnalysis, InvalidInputsThrow) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 1;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);
  cfg.node_count = 2;
  cfg.node_mttf = 0;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);

  cfg = {};
  cfg.distribution = FailureDistribution::kWeibull;
  cfg.weibull_shape = 0.0;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);

  cfg = {};
  cfg.cascade.probability = 1.5;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);

  cfg = {};
  cfg.placement = PartnerPlacement::kCrossRack;  // but no rack structure
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);

  cfg = {};
  cfg.engine = FailureEngine::kSuperposition;  // not memoryless: cascades
  cfg.cascade.probability = 0.1;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);

  cfg = {};
  cfg.energy.enabled = true;
  cfg.energy.checkpoint_interval = 0.0;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);
}

// The scheduler swap is behavior-preserving: the heap and calendar
// engines share one DES and must produce bit-identical results across
// the whole scenario grid (the queue-level property test pins pop
// order; this pins the end-to-end analysis).
TEST(FailureAnalysis, HeapAndCalendarEnginesAreBitIdentical) {
  std::vector<FailureAnalysisConfig> grid;
  for (const auto dist :
       {FailureDistribution::kExponential, FailureDistribution::kWeibull}) {
    for (const bool cascade : {false, true}) {
      for (const bool racks : {false, true}) {
        FailureAnalysisConfig cfg;
        cfg.node_count = 256;
        cfg.node_mttf = days(30);
        cfg.rebuild_time = 1800.0;
        cfg.target_failures = 4000;
        cfg.seed = 99;
        cfg.distribution = dist;
        cfg.weibull_shape = 0.7;
        if (cascade) cfg.cascade.probability = 0.10;
        if (racks) {
          cfg.racks.rack_size = 16;
          cfg.racks.outage_mttf = days(365);
          cfg.placement = PartnerPlacement::kCrossRack;
        }
        grid.push_back(cfg);
      }
    }
  }
  for (auto& cfg : grid) {
    cfg.engine = FailureEngine::kHeap;
    const auto heap = analyze_failures(cfg);
    cfg.engine = FailureEngine::kCalendar;
    const auto calendar = analyze_failures(cfg);
    EXPECT_EQ(heap.failures, calendar.failures);
    EXPECT_EQ(heap.local_recoverable, calendar.local_recoverable);
    EXPECT_EQ(heap.io_required, calendar.io_required);
    EXPECT_EQ(heap.cascade_failures, calendar.cascade_failures);
    EXPECT_EQ(heap.rack_outages, calendar.rack_outages);
    EXPECT_EQ(heap.rack_node_failures, calendar.rack_node_failures);
    EXPECT_EQ(heap.events_processed, calendar.events_processed);
    EXPECT_EQ(heap.elapsed, calendar.elapsed);
    EXPECT_EQ(heap.observed_system_mtti, calendar.observed_system_mtti);
  }
}

// The superposition fast path samples the same distribution the DES
// does (union of N Poisson processes); it must agree statistically on
// the physics even though the sample paths differ.
TEST(FailureAnalysis, SuperpositionAgreesWithDesStatistically) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 1000;
  cfg.node_mttf = days(10);
  cfg.rebuild_time = 3600.0;
  cfg.target_failures = 50000;
  cfg.engine = FailureEngine::kSuperposition;
  const auto super = analyze_failures(cfg);
  cfg.engine = FailureEngine::kCalendar;
  const auto des = analyze_failures(cfg);
  EXPECT_NEAR(super.p_local(), des.p_local(), 0.02);
  EXPECT_NEAR(super.observed_system_mtti / des.observed_system_mtti, 1.0,
              0.05);
  EXPECT_EQ(super.failures, 50000u);
  EXPECT_EQ(super.failures, super.local_recoverable + super.io_required);
}

TEST(FailureAnalysis, AutoEngineSelection) {
  // Memoryless -> superposition (events == failures, no queue); any
  // widened scenario -> calendar (init events for every node count).
  FailureAnalysisConfig cfg;
  cfg.node_count = 100;
  cfg.node_mttf = days(10);
  cfg.target_failures = 1000;
  EXPECT_TRUE(cfg.memoryless());
  const auto fast = analyze_failures(cfg);
  EXPECT_EQ(fast.events_processed, fast.failures);

  cfg.distribution = FailureDistribution::kWeibull;
  EXPECT_FALSE(cfg.memoryless());
  const auto des = analyze_failures(cfg);
  EXPECT_GE(des.events_processed, des.failures);
}

TEST(FailureAnalysis, CascadesClusterFailures) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 512;
  cfg.node_mttf = days(30);
  cfg.rebuild_time = 1800.0;
  cfg.target_failures = 20000;
  cfg.cascade.probability = 0.25;
  cfg.cascade.max_fanout = 4;
  cfg.cascade.radius = 8;
  cfg.cascade.window = 600.0;
  const auto with = analyze_failures(cfg);
  EXPECT_GT(with.cascade_failures, 0u);
  EXPECT_GT(with.p_cascade(), 0.0);
  EXPECT_LT(with.p_cascade(), 1.0);
  EXPECT_EQ(with.failures, with.local_recoverable + with.io_required);

  cfg.cascade.probability = 0.0;
  const auto without = analyze_failures(cfg);
  EXPECT_EQ(without.cascade_failures, 0u);
  // Cascade victims land within the radius of the origin while it (or
  // its neighbors) rebuild, so correlated bursts must hurt p_local.
  EXPECT_LT(with.p_local(), without.p_local());
}

TEST(FailureAnalysis, RackOutagesInteractWithPlacement) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 512;
  cfg.node_mttf = days(365);  // node failures rare: outages dominate
  cfg.rebuild_time = 600.0;
  cfg.target_failures = 20000;
  cfg.racks.rack_size = 16;
  cfg.racks.outage_mttf = days(10);
  cfg.racks.outage_duration = 900.0;

  cfg.placement = PartnerPlacement::kRing;
  const auto ring = analyze_failures(cfg);
  EXPECT_GT(ring.rack_outages, 0u);
  EXPECT_GT(ring.rack_node_failures, 0u);
  EXPECT_NEAR(ring.mean_outage_width(), 16.0, 1e-9);

  cfg.placement = PartnerPlacement::kCrossRack;
  const auto cross = analyze_failures(cfg);
  // Ring keeps 15 of 16 partners inside the downed rack; cross-rack
  // keeps all 16 outside. The placement gap is the whole point.
  EXPECT_GT(cross.p_local(), ring.p_local() + 0.5);
}

TEST(FailureAnalysis, EnergyModelDerivesFromCounters) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 256;
  cfg.node_mttf = days(30);
  cfg.rebuild_time = 1800.0;
  cfg.target_failures = 5000;
  cfg.energy.enabled = true;
  const auto r = analyze_failures(cfg);
  EXPECT_GT(r.energy.compute_joules, 0.0);
  EXPECT_GT(r.energy.checkpoint_joules, 0.0);
  EXPECT_GT(r.energy.rebuild_joules, 0.0);
  EXPECT_GT(r.energy.restart_joules, 0.0);
  EXPECT_GT(r.energy.total_joules(), 0.0);
  EXPECT_GT(r.energy.overhead_fraction(), 0.0);
  EXPECT_LT(r.energy.overhead_fraction(), 1.0);
  EXPECT_GT(r.energy_per_failure(), 0.0);

  cfg.energy.enabled = false;
  const auto off = analyze_failures(cfg);
  EXPECT_EQ(off.energy.total_joules(), 0.0);
  EXPECT_EQ(off.energy.overhead_fraction(), 0.0);
}

TEST(FailureAnalysis, DivisionGuardsOnEmptyResults) {
  const FailureAnalysisResult empty;
  EXPECT_EQ(empty.p_local(), 0.0);
  EXPECT_EQ(empty.p_cascade(), 0.0);
  EXPECT_EQ(empty.p_rack(), 0.0);
  EXPECT_EQ(empty.mean_outage_width(), 0.0);
  EXPECT_EQ(empty.energy_per_failure(), 0.0);
  const EnergyReport zero;
  EXPECT_EQ(zero.overhead_fraction(), 0.0);
  const FailureReplicateSummary none;
  EXPECT_EQ(none.p_local(), 0.0);
  EXPECT_EQ(none.p_cascade(), 0.0);
  EXPECT_EQ(none.p_rack(), 0.0);
  EXPECT_EQ(none.mean_system_mtti(), 0.0);
  EXPECT_EQ(none.mean_failures(), 0.0);
}

TEST(FailureAnalysis, PublishesMetrics) {
  obs::MetricsRegistry metrics;
  FailureAnalysisConfig cfg;
  cfg.node_count = 64;
  cfg.node_mttf = days(10);
  cfg.target_failures = 2000;
  cfg.energy.enabled = true;
  cfg.metrics = &metrics;
  const auto r = analyze_failures(cfg);
  EXPECT_EQ(metrics.counter("cluster.failures").value(), r.failures);
  EXPECT_EQ(metrics.counter("cluster.io_required").value(), r.io_required);
  EXPECT_EQ(metrics.gauge("cluster.p_local").value(), r.p_local());
  EXPECT_GT(metrics.gauge("cluster.energy.compute_joules").value(), 0.0);
}

// Replica fan-out must be a pure function of the base seed: identical
// summaries - bit for bit, integers and derived doubles - at pool sizes
// 1, 2 and 8, under both distributions.
TEST(FailureAnalysis, ReplicateAggregatesArePoolSizeInvariant) {
  for (const auto dist :
       {FailureDistribution::kExponential, FailureDistribution::kWeibull}) {
    FailureAnalysisConfig base;
    base.node_count = 256;
    base.node_mttf = days(30);
    base.rebuild_time = 1800.0;
    base.target_failures = 3000;
    base.seed = 7;
    base.distribution = dist;
    base.cascade.probability = dist == FailureDistribution::kWeibull ? 0.1
                                                                     : 0.0;

    exec::TaskPool pool1(1);
    exec::TaskPool pool2(2);
    exec::TaskPool pool8(8);
    const auto a = run_failure_replicates(base, 12, &pool1);
    const auto b = run_failure_replicates(base, 12, &pool2);
    const auto c = run_failure_replicates(base, 12, &pool8);

    for (const auto* s : {&b, &c}) {
      EXPECT_EQ(a.total_failures, s->total_failures);
      EXPECT_EQ(a.total_local_recoverable, s->total_local_recoverable);
      EXPECT_EQ(a.total_io_required, s->total_io_required);
      EXPECT_EQ(a.total_cascade_failures, s->total_cascade_failures);
      EXPECT_EQ(a.total_events_processed, s->total_events_processed);
      EXPECT_EQ(a.total_elapsed, s->total_elapsed);
      EXPECT_EQ(a.total_energy_joules, s->total_energy_joules);
      EXPECT_EQ(a.p_local(), s->p_local());
      EXPECT_EQ(a.mean_system_mtti(), s->mean_system_mtti());
    }
    ASSERT_EQ(a.runs.size(), 12u);
    // Replicates are genuinely independent streams, not copies.
    EXPECT_NE(a.runs[0].elapsed, a.runs[1].elapsed);
  }
}

TEST(ClusterSim, CompletesWithFailuresAndVerifies) {
  ClusterSimConfig cfg;
  cfg.node_count = 4;
  cfg.state_bytes_per_rank = 32 * 1024;
  cfg.node_mttf = 800.0;  // aggressive failure rate for test coverage
  cfg.total_steps = 400;
  cfg.io_every = 3;
  const auto r = ClusterSim(cfg).run();
  // steps_completed counts every executed step, including re-execution
  // after rollbacks: it exceeds the target by exactly the rerun steps.
  EXPECT_EQ(r.steps_completed, 400u + r.steps_rerun);
  EXPECT_GT(r.failures, 0u);
  EXPECT_GT(r.recoveries, 0u);
  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_TRUE(r.state_verified);
  // Healthy ranks recover from local; the victim uses partner (or IO).
  EXPECT_GT(r.local_level_ranks, 0u);
  EXPECT_GT(r.partner_level_ranks + r.io_level_ranks, 0u);
}

TEST(ClusterSim, NoFailuresIsCleanRun) {
  ClusterSimConfig cfg;
  cfg.node_count = 2;
  cfg.state_bytes_per_rank = 16 * 1024;
  cfg.node_mttf = 1e12;
  cfg.total_steps = 100;
  const auto r = ClusterSim(cfg).run();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.steps_rerun, 0u);
  EXPECT_EQ(r.steps_completed, 100u);
  EXPECT_TRUE(r.state_verified);
}

TEST(ClusterSim, RerunAccountingIsConsistent) {
  ClusterSimConfig cfg;
  cfg.node_count = 3;
  cfg.state_bytes_per_rank = 16 * 1024;
  cfg.node_mttf = 500.0;
  cfg.total_steps = 300;
  cfg.seed = 21;
  const auto r = ClusterSim(cfg).run();
  EXPECT_EQ(r.steps_completed, 300u + r.steps_rerun);
  if (r.failures > 0) {
    // Rerun steps only arise from recoveries or scratch restarts.
    EXPECT_GT(r.recoveries + r.unrecoverable, 0u);
  }
}

TEST(ClusterSim, WorksAcrossWorkloads) {
  for (const char* app : {"hpccg", "minismac"}) {
    ClusterSimConfig cfg;
    cfg.app = app;
    cfg.node_count = 2;
    cfg.state_bytes_per_rank = 16 * 1024;
    cfg.node_mttf = 600.0;
    cfg.total_steps = 120;
    const auto r = ClusterSim(cfg).run();
    EXPECT_EQ(r.steps_completed, 120u) << app;
    EXPECT_TRUE(r.state_verified) << app;
  }
}

TEST(ClusterSim, InvalidConfigThrows) {
  ClusterSimConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(ClusterSim{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::cluster
