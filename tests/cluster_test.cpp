#include <gtest/gtest.h>

#include "cluster/cluster_sim.hpp"
#include "cluster/failure_analysis.hpp"
#include "common/units.hpp"

namespace ndpcr::cluster {
namespace {

using namespace ndpcr::units;

TEST(FailureAnalysis, ObservedMttiMatchesTheory) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 1000;
  cfg.node_mttf = years(5);
  cfg.target_failures = 20000;
  const auto r = analyze_failures(cfg);
  EXPECT_EQ(r.failures, 20000u);
  // System MTTI = node MTTF / N.
  EXPECT_NEAR(r.observed_system_mtti / (cfg.node_mttf / cfg.node_count), 1.0,
              0.05);
}

TEST(FailureAnalysis, MostFailuresRecoverableFromPartner) {
  // With a 5-year node MTTF and a 10-minute rebuild window, double
  // failures within a partner pair are rare: P(local) should be very
  // high - the regime behind the paper's 85-96% inputs.
  FailureAnalysisConfig cfg;
  cfg.node_count = 1000;
  cfg.node_mttf = years(5);
  cfg.rebuild_time = 600.0;
  cfg.target_failures = 50000;
  const auto r = analyze_failures(cfg);
  EXPECT_GT(r.p_local(), 0.99);
  EXPECT_EQ(r.failures, r.local_recoverable + r.io_required);
}

TEST(FailureAnalysis, LongerRebuildWindowNeedsMoreIoRecoveries) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 500;
  cfg.node_mttf = days(10);  // compressed time scale to get statistics
  cfg.target_failures = 50000;

  cfg.rebuild_time = 60.0;
  const double p_short = analyze_failures(cfg).p_local();
  cfg.rebuild_time = 3600.0;
  const double p_long = analyze_failures(cfg).p_local();
  EXPECT_LT(p_long, p_short);
  EXPECT_GT(analyze_failures(cfg).io_required, 0u);
}

TEST(FailureAnalysis, InvalidInputsThrow) {
  FailureAnalysisConfig cfg;
  cfg.node_count = 1;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);
  cfg.node_count = 2;
  cfg.node_mttf = 0;
  EXPECT_THROW(analyze_failures(cfg), std::invalid_argument);
}

TEST(ClusterSim, CompletesWithFailuresAndVerifies) {
  ClusterSimConfig cfg;
  cfg.node_count = 4;
  cfg.state_bytes_per_rank = 32 * 1024;
  cfg.node_mttf = 800.0;  // aggressive failure rate for test coverage
  cfg.total_steps = 400;
  cfg.io_every = 3;
  const auto r = ClusterSim(cfg).run();
  // steps_completed counts every executed step, including re-execution
  // after rollbacks: it exceeds the target by exactly the rerun steps.
  EXPECT_EQ(r.steps_completed, 400u + r.steps_rerun);
  EXPECT_GT(r.failures, 0u);
  EXPECT_GT(r.recoveries, 0u);
  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_TRUE(r.state_verified);
  // Healthy ranks recover from local; the victim uses partner (or IO).
  EXPECT_GT(r.local_level_ranks, 0u);
  EXPECT_GT(r.partner_level_ranks + r.io_level_ranks, 0u);
}

TEST(ClusterSim, NoFailuresIsCleanRun) {
  ClusterSimConfig cfg;
  cfg.node_count = 2;
  cfg.state_bytes_per_rank = 16 * 1024;
  cfg.node_mttf = 1e12;
  cfg.total_steps = 100;
  const auto r = ClusterSim(cfg).run();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.steps_rerun, 0u);
  EXPECT_EQ(r.steps_completed, 100u);
  EXPECT_TRUE(r.state_verified);
}

TEST(ClusterSim, RerunAccountingIsConsistent) {
  ClusterSimConfig cfg;
  cfg.node_count = 3;
  cfg.state_bytes_per_rank = 16 * 1024;
  cfg.node_mttf = 500.0;
  cfg.total_steps = 300;
  cfg.seed = 21;
  const auto r = ClusterSim(cfg).run();
  EXPECT_EQ(r.steps_completed, 300u + r.steps_rerun);
  if (r.failures > 0) {
    // Rerun steps only arise from recoveries or scratch restarts.
    EXPECT_GT(r.recoveries + r.unrecoverable, 0u);
  }
}

TEST(ClusterSim, WorksAcrossWorkloads) {
  for (const char* app : {"hpccg", "minismac"}) {
    ClusterSimConfig cfg;
    cfg.app = app;
    cfg.node_count = 2;
    cfg.state_bytes_per_rank = 16 * 1024;
    cfg.node_mttf = 600.0;
    cfg.total_steps = 120;
    const auto r = ClusterSim(cfg).run();
    EXPECT_EQ(r.steps_completed, 120u) << app;
    EXPECT_TRUE(r.state_verified) << app;
  }
}

TEST(ClusterSim, InvalidConfigThrows) {
  ClusterSimConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(ClusterSim{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace ndpcr::cluster
