#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "ckpt/file_store.hpp"
#include "common/rng.hpp"

namespace ndpcr::ckpt {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("ndpcr-test-" + std::to_string(Rng(::testing::UnitTest::
                                                    GetInstance()
                                                        ->random_seed())
                                                .next_u64()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  Bytes payload(std::size_t size, std::uint64_t seed) {
    Rng rng(seed);
    Bytes data(size);
    for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
    return data;
  }

  std::filesystem::path root_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  FileStore store(root_);
  const Bytes data = payload(4096, 1);
  store.put(0, 1, data);
  EXPECT_TRUE(store.contains(0, 1));
  EXPECT_EQ(store.get(0, 1).value(), data);
  EXPECT_FALSE(store.contains(0, 2));
  EXPECT_FALSE(store.get(1, 1).has_value());
}

TEST_F(FileStoreTest, FilesLandInBlcrStyleLayout) {
  FileStore store(root_);
  store.put(3, 7, payload(128, 2));
  EXPECT_TRUE(
      std::filesystem::exists(root_ / "rank-3" / "ckpt-7.ndcr"));
  // No leftover temporary file.
  EXPECT_FALSE(
      std::filesystem::exists(root_ / "rank-3" / "ckpt-7.ndcr.tmp"));
}

TEST_F(FileStoreTest, ListAndNewestSortNumerically) {
  FileStore store(root_);
  for (std::uint64_t id : {5, 1, 10, 2}) {
    store.put(0, id, payload(16, id));
  }
  EXPECT_EQ(store.list(0), (std::vector<std::uint64_t>{1, 2, 5, 10}));
  EXPECT_EQ(store.newest_id(0).value(), 10u);
  EXPECT_FALSE(store.newest_id(9).has_value());
  EXPECT_TRUE(store.list(9).empty());
}

TEST_F(FileStoreTest, OverwriteReplacesContent) {
  FileStore store(root_);
  store.put(0, 1, payload(100, 3));
  const Bytes v2 = payload(200, 4);
  store.put(0, 1, v2);
  EXPECT_EQ(store.get(0, 1).value(), v2);
  EXPECT_EQ(store.list(0).size(), 1u);
}

TEST_F(FileStoreTest, EraseRemovesFile) {
  FileStore store(root_);
  store.put(0, 1, payload(64, 5));
  store.erase(0, 1);
  EXPECT_FALSE(store.contains(0, 1));
  store.erase(0, 99);  // unknown: no-op
}

TEST_F(FileStoreTest, SurvivesReopen) {
  {
    FileStore store(root_);
    store.put(2, 4, payload(512, 6));
  }
  FileStore reopened(root_);
  EXPECT_EQ(reopened.get(2, 4).value(), payload(512, 6));
  EXPECT_EQ(reopened.newest_id(2).value(), 4u);
}

TEST_F(FileStoreTest, IgnoresForeignFiles) {
  FileStore store(root_);
  store.put(0, 1, payload(32, 7));
  std::filesystem::create_directories(root_ / "rank-0");
  { std::ofstream(root_ / "rank-0" / "notes.txt") << "hello"; }
  { std::ofstream(root_ / "rank-0" / "ckpt-abc.ndcr") << "junk"; }
  EXPECT_EQ(store.list(0), (std::vector<std::uint64_t>{1}));
}

TEST_F(FileStoreTest, EmptyPayload) {
  FileStore store(root_);
  store.put(0, 1, ByteSpan{});
  EXPECT_TRUE(store.contains(0, 1));
  EXPECT_TRUE(store.get(0, 1).value().empty());
}

TEST_F(FileStoreTest, LatestPointerPublishesNewest) {
  FileStore store(root_);
  store.put(0, 3, payload(64, 1));
  EXPECT_TRUE(std::filesystem::exists(root_ / "rank-0" / "latest"));
  EXPECT_EQ(store.latest_pointer(0), 3u);
  EXPECT_EQ(store.newest_id(0), 3u);
}

TEST_F(FileStoreTest, LatestPointerOnlyAdvances) {
  FileStore store(root_);
  store.put(0, 5, payload(64, 1));
  store.put(0, 2, payload(64, 2));  // backfill must not move the pointer
  EXPECT_EQ(store.latest_pointer(0), 5u);
  EXPECT_EQ(store.newest_id(0), 5u);
}

// A crash between the data rename and the pointer update leaves the new
// file unpublished: the previous pointer wins and newest_id() keeps
// answering with the previous checkpoint.
TEST_F(FileStoreTest, CrashBeforePointerUpdatePreviousPointerWins) {
  FileStore store(root_);
  store.put(0, 1, payload(64, 1));
  store.set_mutation_gate([](const MutationSite& site) {
    MutationDecision d;
    d.drop = site.op == MutationOp::kPointer;
    return d;
  });
  EXPECT_TRUE(store.put(0, 2, payload(64, 2)).ok());
  store.set_mutation_gate({});
  EXPECT_TRUE(store.contains(0, 2));  // data is durable...
  EXPECT_EQ(store.latest_pointer(0), 1u);  // ...but not published
  EXPECT_EQ(store.newest_id(0), 1u);

  // A reopening process sees the same thing.
  FileStore reopened(root_);
  EXPECT_EQ(reopened.latest_pointer(0), 1u);
  EXPECT_EQ(reopened.newest_id(0), 1u);
}

// A torn pointer write (non-atomic foreign writer) is detected by the
// size/magic/CRC validation; newest_id() falls back to scanning.
TEST_F(FileStoreTest, TornPointerDetectedAndScanWins) {
  FileStore store(root_);
  store.put(0, 1, payload(64, 1));
  store.put(0, 4, payload(64, 2));
  const std::filesystem::path latest = root_ / "rank-0" / "latest";
  for (const std::string& junk :
       {std::string("\x50"), std::string("not a pointer"),
        std::string(20, '\0'), std::string()}) {
    { std::ofstream(latest, std::ios::trunc | std::ios::binary) << junk; }
    EXPECT_EQ(store.latest_pointer(0), std::nullopt);
    EXPECT_EQ(store.newest_id(0), 4u);
  }
}

// A valid-looking pointer naming a checkpoint file that is missing is
// stale, not authoritative.
TEST_F(FileStoreTest, PointerToMissingFileFallsBackToScan) {
  FileStore store(root_);
  store.put(0, 1, payload(64, 1));
  store.put(0, 2, payload(64, 2));
  std::filesystem::remove(root_ / "rank-0" / "ckpt-2.ndcr");
  EXPECT_EQ(store.latest_pointer(0), std::nullopt);
  EXPECT_EQ(store.newest_id(0), 1u);
}

TEST_F(FileStoreTest, EraseRefreshesPointer) {
  FileStore store(root_);
  store.put(0, 1, payload(64, 1));
  store.put(0, 2, payload(64, 2));
  store.erase(0, 2);
  EXPECT_EQ(store.latest_pointer(0), 1u);
  EXPECT_EQ(store.newest_id(0), 1u);
}

}  // namespace
}  // namespace ndpcr::ckpt
