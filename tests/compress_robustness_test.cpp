// Adversarial robustness: decompressors must never crash, hang, corrupt
// memory, or silently return wrong data, no matter how the stream is
// mangled. Every mutation either throws CodecError or (if it happens to
// leave the stream semantically intact) reproduces the original bytes -
// the frame CRC makes silent corruption effectively impossible.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "compress/codec.hpp"

namespace ndpcr::compress {
namespace {

struct CodecCase {
  const char* name;
  int level;
};

Bytes sample_input(std::uint64_t seed) {
  // A mix of runs, text, and noise: exercises every coding path.
  Rng rng(seed);
  Bytes data;
  data.reserve(60000);
  for (int section = 0; section < 30; ++section) {
    switch (rng.next_below(3)) {
      case 0:
        data.insert(data.end(), 500 + rng.next_below(1500),
                    static_cast<std::byte>(rng.next_below(256)));
        break;
      case 1:
        for (std::size_t i = 0, n = 500 + rng.next_below(1500); i < n; ++i) {
          data.push_back(static_cast<std::byte>('a' + rng.next_below(26)));
        }
        break;
      default:
        for (std::size_t i = 0, n = 500 + rng.next_below(1500); i < n; ++i) {
          data.push_back(static_cast<std::byte>(rng.next_below(256)));
        }
    }
  }
  return data;
}

class RobustnessTest : public ::testing::TestWithParam<CodecCase> {};

// The decompressor may throw CodecError - nothing else - or return the
// exact original data.
void expect_safe(const Codec& codec, ByteSpan mangled, const Bytes& truth) {
  try {
    const Bytes out = codec.decompress(mangled);
    EXPECT_EQ(out, truth) << "silent corruption!";
  } catch (const CodecError&) {
    // Expected for essentially all mutations.
  }
}

TEST_P(RobustnessTest, SurvivesTruncationAtEveryRegion) {
  const auto codec = make_codec(GetParam().name, GetParam().level);
  const Bytes input = sample_input(42);
  const Bytes packed = codec->compress(input);

  // Every cut in the header region plus a sweep through the payload.
  for (std::size_t cut = 0; cut < std::min<std::size_t>(packed.size(), 32);
       ++cut) {
    expect_safe(*codec, ByteSpan(packed.data(), cut), input);
  }
  for (std::size_t cut = 32; cut < packed.size();
       cut += 1 + packed.size() / 97) {
    expect_safe(*codec, ByteSpan(packed.data(), cut), input);
  }
  expect_safe(*codec, ByteSpan(packed.data(), packed.size() - 1), input);
}

TEST_P(RobustnessTest, SurvivesSingleByteCorruption) {
  const auto codec = make_codec(GetParam().name, GetParam().level);
  const Bytes input = sample_input(43);
  const Bytes packed = codec->compress(input);

  Rng rng(99);
  // Every header byte plus 200 random payload positions.
  for (std::size_t pos = 0; pos < std::min<std::size_t>(packed.size(), 16);
       ++pos) {
    Bytes mangled = packed;
    mangled[pos] ^= std::byte{0xFF};
    expect_safe(*codec, mangled, input);
  }
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mangled = packed;
    const std::size_t pos = rng.next_below(mangled.size());
    mangled[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
    expect_safe(*codec, mangled, input);
  }
}

TEST_P(RobustnessTest, SurvivesRandomGarbage) {
  const auto codec = make_codec(GetParam().name, GetParam().level);
  const Bytes input = sample_input(44);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes garbage(rng.next_below(4096));
    for (auto& b : garbage) b = static_cast<std::byte>(rng.next_below(256));
    expect_safe(*codec, garbage, input);
  }
  expect_safe(*codec, ByteSpan{}, input);
}

TEST_P(RobustnessTest, SurvivesCrossCodecStreams) {
  // Feeding one codec's stream to another must be rejected cleanly.
  const Bytes input = sample_input(45);
  const auto victim = make_codec(GetParam().name, GetParam().level);
  for (const auto& spec : paper_codec_suite()) {
    const auto other = make_codec(spec.id, spec.level);
    if (other->id() == victim->id()) continue;
    const Bytes foreign = other->compress(input);
    EXPECT_THROW((void)victim->decompress(foreign), CodecError)
        << GetParam().name << " accepted a " << spec.display_name
        << " stream";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, RobustnessTest,
    ::testing::Values(CodecCase{"null", 0}, CodecCase{"rle", 1},
                      CodecCase{"nlz4", 1}, CodecCase{"ngzip", 1},
                      CodecCase{"nbzip2", 1}, CodecCase{"nxz", 1}),
    [](const auto& info) {
      return std::string(info.param.name) + "_l" +
             std::to_string(info.param.level);
    });

// Regression: a match found near the ngzip 256 KiB block boundary may run
// past it (matches are bounded by the input, not the block) and swallow
// the whole remainder, so the encoder can only decide the final-block flag
// after parsing. Run-heavy payloads a few bytes past the boundary used to
// produce streams whose last block claimed not to be final; the decoder
// then read off the end of the stream.
TEST(DeflateBlockBoundary, MatchCrossingFinalBlockRoundTrips) {
  constexpr std::size_t kBlock = 256 * 1024;
  for (const int level : {1, 6, 9}) {
    const auto codec = make_codec("ngzip", level);
    for (const std::size_t size :
         {kBlock - 1, kBlock, kBlock + 1, kBlock + 3, kBlock + 200,
          2 * kBlock + 3}) {
      Rng rng(size * 31 + level);
      Bytes data(size);
      for (std::size_t i = 0; i < size;) {
        const std::size_t run = 1 + rng.next_below(64);
        const auto value = static_cast<std::byte>(rng.next_below(4));
        for (std::size_t j = 0; j < run && i < size; ++j, ++i) {
          data[i] = value;
        }
      }
      const Bytes packed = codec->compress(data);
      EXPECT_EQ(codec->decompress(packed), data)
          << "level " << level << " size " << size;
    }
  }
}

}  // namespace
}  // namespace ndpcr::compress
