// Online codec selection (docs/PERF.md): choose_codec must be a pure
// function of the payload bytes, and its decisions on representative
// checkpoint content are pinned here - a probe change that silently
// reroutes a workload class to a different codec fails this suite, not a
// bench run three PRs later.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "compress/probe.hpp"
#include "workloads/proxy_kernels.hpp"

namespace ndpcr::compress {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_below(256));
  return b;
}

// CSR-style metadata: long runs of small monotone integers - low entropy,
// heavy 4-gram repetition.
Bytes csr_like(std::size_t rows) {
  std::vector<std::uint32_t> words;
  std::uint32_t offset = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    words.push_back(offset);
    offset += 3 + static_cast<std::uint32_t>(r % 5);
    for (int k = 0; k < 3; ++k) {
      words.push_back(static_cast<std::uint32_t>(r + k));
    }
  }
  Bytes b(words.size() * sizeof(std::uint32_t));
  std::memcpy(b.data(), words.data(), b.size());
  return b;
}

TEST(CodecProbe, CandidateTableIsStable) {
  // The adaptive streams record candidate choices in their container
  // headers; reordering this table would misdecode nothing (streams are
  // self-describing) but silently change what new commits write.
  EXPECT_EQ(codec_candidate(0).id, CodecId::kLz4Style);
  EXPECT_FALSE(codec_candidate(0).accelerate);
  EXPECT_EQ(codec_candidate(1).id, CodecId::kLz4Style);
  EXPECT_TRUE(codec_candidate(1).accelerate);
  EXPECT_EQ(codec_candidate(2).id, CodecId::kDeflateStyle);
  EXPECT_EQ(codec_candidate(2).level, 6);
  EXPECT_THROW(codec_candidate(kCodecCandidates), std::out_of_range);
}

TEST(CodecProbe, PureFunctionOfPayloadBytes) {
  const Bytes payload = random_bytes(100000, 99);
  ProbeStats a, b;
  const CodecChoice ca = choose_codec(ByteSpan(payload), &a);
  const CodecChoice cb = choose_codec(ByteSpan(payload), &b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a.entropy_bits, b.entropy_bits);
  EXPECT_EQ(a.match_fraction, b.match_fraction);
  EXPECT_GT(a.sampled_bytes, 0u);
}

TEST(CodecProbe, IncompressibleBytesPickAcceleratedLz) {
  // Uniform random bytes: entropy ~8 bits/byte, no 4-gram matches. The
  // probe must route these to the accelerated (match-skipping) nlz4
  // candidate instead of burning full match-search on noise.
  ProbeStats ps;
  const CodecChoice c = choose_codec(ByteSpan(random_bytes(1 << 18, 7)), &ps);
  EXPECT_GT(ps.entropy_bits, 7.2);
  EXPECT_LT(ps.match_fraction, 0.05);
  EXPECT_EQ(c.id, CodecId::kLz4Style);
  EXPECT_TRUE(c.accelerate);
}

TEST(CodecProbe, StructuredMetadataPicksEntropyCodec) {
  // CSR-style index arrays: low byte entropy, dense repetition - worth
  // the slower entropy coder (ngzip-style) for the extra ratio.
  ProbeStats ps;
  const CodecChoice c = choose_codec(ByteSpan(csr_like(4096)), &ps);
  EXPECT_LT(ps.entropy_bits, 5.5);
  EXPECT_EQ(c.id, CodecId::kDeflateStyle);
  EXPECT_FALSE(c.accelerate);
}

TEST(CodecProbe, TinyPayloadsStillDecide) {
  for (std::size_t n : {0u, 1u, 3u, 15u, 64u}) {
    ProbeStats ps;
    const CodecChoice c = choose_codec(ByteSpan(Bytes(n, std::byte{42})), &ps);
    // Constant bytes are maximally structured whenever there is enough
    // signal to probe; the empty/near-empty cases take the balanced
    // default. Either way: a valid candidate, deterministically.
    bool known = false;
    for (std::size_t i = 0; i < kCodecCandidates; ++i) {
      known = known || c == codec_candidate(i);
    }
    EXPECT_TRUE(known) << n;
  }
}

// Pinned decisions on the proxy-kernel checkpoint corpora (NPB cg/mg/ft,
// docs/EQUIVALENCE.md): double-precision solver state probes as
// high-entropy, so all three route to an nlz4 candidate - the paper's
// observation that scientific-array checkpoints rarely reward a heavy
// entropy stage. The assertions pin the *routing class*, not raw probe
// numbers, so probe tuning within a class stays green.
TEST(CodecProbe, ProxyKernelCorporaPinned) {
  for (const std::string& name : workloads::proxy_kernel_names()) {
    auto kernel = workloads::make_proxy_kernel(name, 1 << 18, 1234);
    for (int i = 0; i < 3; ++i) kernel->iterate();
    const Bytes payload = kernel->registry().capture();
    ProbeStats ps;
    const CodecChoice c = choose_codec(ByteSpan(payload), &ps);
    EXPECT_GT(ps.sampled_bytes, 0u) << name;
    EXPECT_EQ(c.id, CodecId::kLz4Style) << name;
    if (name == "cg") {
      // CG's fresh solver vectors are the least structured of the three.
      EXPECT_GT(ps.entropy_bits, 5.5) << name;
    }
  }
}

}  // namespace
}  // namespace ndpcr::compress
