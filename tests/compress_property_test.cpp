// Property-based round-trip tests: every codec, at several levels, must
// reproduce its input exactly across a grid of data shapes and sizes that
// stress different code paths (empty input, runs, random bytes, text-like,
// float-like checkpoint pages, block boundaries).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "compress/codec.hpp"

namespace ndpcr::compress {
namespace {

enum class Shape {
  kEmpty,
  kSingleByte,
  kAllZero,
  kAllSame,
  kRandom,
  kLowEntropy,
  kTextLike,
  kFloatLike,
  kRunsAndNoise,
  kSelfSimilar,
};

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kEmpty: return "Empty";
    case Shape::kSingleByte: return "SingleByte";
    case Shape::kAllZero: return "AllZero";
    case Shape::kAllSame: return "AllSame";
    case Shape::kRandom: return "Random";
    case Shape::kLowEntropy: return "LowEntropy";
    case Shape::kTextLike: return "TextLike";
    case Shape::kFloatLike: return "FloatLike";
    case Shape::kRunsAndNoise: return "RunsAndNoise";
    case Shape::kSelfSimilar: return "SelfSimilar";
  }
  return "?";
}

Bytes make_data(Shape shape, std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes data;
  switch (shape) {
    case Shape::kEmpty:
      return data;
    case Shape::kSingleByte:
      data.assign(1, std::byte{0x7F});
      return data;
    case Shape::kAllZero:
      data.assign(size, std::byte{0});
      return data;
    case Shape::kAllSame:
      data.assign(size, std::byte{0xA5});  // the RLE escape byte, on purpose
      return data;
    case Shape::kRandom:
      data.resize(size);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.next_below(256));
      }
      return data;
    case Shape::kLowEntropy:
      data.resize(size);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.next_below(4));
      }
      return data;
    case Shape::kTextLike: {
      static const std::string words[] = {"alpha", "beta", "gamma", "delta",
                                          "epsilon", "zeta", " ", "\n"};
      while (data.size() < size) {
        const auto& w = words[rng.next_below(8)];
        for (char c : w) data.push_back(static_cast<std::byte>(c));
      }
      data.resize(size);
      return data;
    }
    case Shape::kFloatLike: {
      // Smooth doubles, like a stencil field: high-byte structure, noisy
      // mantissa tails - the dominant content of HPC checkpoints.
      data.reserve(size);
      double x = 1.0;
      while (data.size() + sizeof(double) <= size) {
        x += 0.001 * rng.normal();
        unsigned char raw[sizeof(double)];
        std::memcpy(raw, &x, sizeof(double));
        for (unsigned char c : raw) data.push_back(static_cast<std::byte>(c));
      }
      data.resize(size);
      return data;
    }
    case Shape::kRunsAndNoise:
      while (data.size() < size) {
        if (rng.next_below(2)) {
          const std::size_t run = 1 + rng.next_below(300);
          const auto v = static_cast<std::byte>(rng.next_below(256));
          for (std::size_t i = 0; i < run && data.size() < size; ++i) {
            data.push_back(v);
          }
        } else {
          const std::size_t n = 1 + rng.next_below(40);
          for (std::size_t i = 0; i < n && data.size() < size; ++i) {
            data.push_back(static_cast<std::byte>(rng.next_below(256)));
          }
        }
      }
      return data;
    case Shape::kSelfSimilar: {
      // Seed block repeated with mutations: long matches at large
      // distances, exercising window handling.
      Bytes block(257);
      for (auto& b : block) b = static_cast<std::byte>(rng.next_below(256));
      while (data.size() < size) {
        data.insert(data.end(), block.begin(), block.end());
        block[rng.next_below(block.size())] =
            static_cast<std::byte>(rng.next_below(256));
      }
      data.resize(size);
      return data;
    }
  }
  return data;
}

struct CodecUnderTest {
  const char* name;
  int level;
};

using Param = std::tuple<CodecUnderTest, Shape, std::size_t>;

class RoundTripTest : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTripTest, DecompressRecoversInput) {
  const auto& [cut, shape, size] = GetParam();
  const auto codec = make_codec(cut.name, cut.level);
  const Bytes data = make_data(shape, size, /*seed=*/size * 1337 + 7);
  const Bytes framed = codec->compress(data);
  const Bytes restored = codec->decompress(framed);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_EQ(restored, data);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [cut, shape, size] = info.param;
  std::string name = cut.name;
  name += "L" + std::to_string(cut.level);
  name += "_";
  name += shape_name(shape);
  name += "_" + std::to_string(size);
  return name;
}

// The full grid would be slow for the heavy codecs at large sizes, so two
// suites: all codecs on small/medium inputs, fast codecs additionally on
// larger inputs spanning multiple compression blocks.
INSTANTIATE_TEST_SUITE_P(
    AllCodecsSmall, RoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecUnderTest{"null", 0}, CodecUnderTest{"rle", 1},
                          CodecUnderTest{"nlz4", 1}, CodecUnderTest{"nlz4", 6},
                          CodecUnderTest{"ngzip", 1},
                          CodecUnderTest{"ngzip", 6},
                          CodecUnderTest{"nbzip2", 1},
                          CodecUnderTest{"nxz", 1}, CodecUnderTest{"nxz", 6}),
        ::testing::Values(Shape::kEmpty, Shape::kSingleByte, Shape::kAllZero,
                          Shape::kAllSame, Shape::kRandom, Shape::kLowEntropy,
                          Shape::kTextLike, Shape::kFloatLike,
                          Shape::kRunsAndNoise, Shape::kSelfSimilar),
        ::testing::Values(std::size_t{3}, std::size_t{1000},
                          std::size_t{65537})),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    FastCodecsLarge, RoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecUnderTest{"nlz4", 1},
                          CodecUnderTest{"ngzip", 1},
                          CodecUnderTest{"ngzip", 9}),
        ::testing::Values(Shape::kRandom, Shape::kTextLike, Shape::kFloatLike,
                          Shape::kSelfSimilar),
        // Spans several 256 KiB ngzip blocks, not block aligned.
        ::testing::Values(std::size_t{800000})),
    param_name);

// nbzip2 across a block boundary (level 1 blocks are 100 kB).
INSTANTIATE_TEST_SUITE_P(
    BzipBlockBoundaries, RoundTripTest,
    ::testing::Combine(::testing::Values(CodecUnderTest{"nbzip2", 1},
                                         CodecUnderTest{"nbzip2", 2}),
                       ::testing::Values(Shape::kTextLike, Shape::kLowEntropy,
                                         Shape::kRunsAndNoise),
                       ::testing::Values(std::size_t{100000},
                                         std::size_t{100001},
                                         std::size_t{250007})),
    param_name);

}  // namespace
}  // namespace ndpcr::compress
